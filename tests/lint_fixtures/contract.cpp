#include "contract.hpp"

namespace dfv::analysis {

double fixture_entry(double a, double b) {
  const double scaled = a * 2.0;
  return scaled + b;
}

}  // namespace dfv::analysis
