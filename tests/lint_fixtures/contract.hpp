#pragma once

namespace dfv::analysis {

double fixture_entry(double a, double b);

}  // namespace dfv::analysis
