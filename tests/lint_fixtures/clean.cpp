#include "clean.hpp"

namespace dfv::ml {

int fixture_clean_count() noexcept { return 42; }

}  // namespace dfv::ml
