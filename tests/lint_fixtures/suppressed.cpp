#include <cstdlib>

int fixture_suppressed() {
  // dfv-lint: allow(no-rand): fixture exercising the suppression syntax
  return std::rand();
}
