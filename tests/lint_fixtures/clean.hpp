#pragma once

namespace dfv::ml {

[[nodiscard]] int fixture_clean_count() noexcept;

}  // namespace dfv::ml
