#include <cstddef>

struct Region {
  int msync(int flags);  // declaration: not the syscall
  int madvise();
};

int fixture_member_call(Region& r) {
  return r.msync(0) + r.madvise();  // member calls: not flagged
}

namespace vm {
int mmap(int which);
}

int fixture_scoped_call() {
  return vm::mmap(3);  // namespace-scoped: not the syscall
}

long fixture_raw_pread(int fd, void* buf) {
  return ::pread(fd, buf, 16, 0);  // flagged: global-qualified syscall
}

int fixture_raw_fdatasync(int fd) {
  return fdatasync(fd);  // flagged: bare syscall
}

int fixture_suppressed_ftruncate(int fd) {
  // dfv-lint: allow(blocking-io): fixture exercising the reasoned escape hatch
  return ::ftruncate(fd, 0);
}
