#include <cstddef>
#include <vector>

#include "exec/exec.hpp"

void fixture_parallel_mutate(std::vector<int>& out) {
  dfv::exec::parallel_for(0, 8, 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) out.push_back(int(i));
  });
}
