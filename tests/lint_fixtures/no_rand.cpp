#include <cstdlib>

int fixture_no_rand() {
  return std::rand();
}
