#include <chrono>

double fixture_wall_clock() {
  const auto t = std::chrono::system_clock::now();
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}
