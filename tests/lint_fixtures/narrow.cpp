long fixture_narrow(long big) {
  const int small = static_cast<int>(big);
  return small + big;
}
