#include <cstdlib>

int fixture_allow_no_reason() {
  // dfv-lint: allow(no-rand)
  return std::rand();
}
