int fixture_unknown_rule() {
  // dfv-lint: allow(no-such-rule): reason text present
  return 7;
}
