#pragma once

namespace dfv::ml {

int fixture_count();

}  // namespace dfv::ml
