int fixture_unused_allow() {
  // dfv-lint: allow(wall-clock): nothing here actually reads a clock
  return 7;
}
