#include "ml/rfe.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

#include <cmath>

#include "common/rng.hpp"
#include "exec/exec.hpp"

namespace dfv::ml {
namespace {

/// 6 features, only 0 and 3 informative; offset shifts the target so MAPE
/// is well defined.
void make_data(std::size_t n, Matrix& x, std::vector<double>& y,
               std::vector<double>& offset, Rng& rng) {
  x = Matrix(n, 6);
  y.assign(n, 0.0);
  offset.assign(n, 50.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < 6; ++c) x(i, c) = rng.uniform(-1, 1);
    y[i] = 4.0 * x(i, 0) + std::sin(3.0 * x(i, 3)) * 3.0 + 0.05 * rng.normal();
  }
}

RfeParams fast_params() {
  RfeParams p;
  p.folds = 4;
  p.gbr.n_trees = 30;
  p.gbr.subsample = 0.7;
  return p;
}

TEST(Rfe, FindsInformativeFeatures) {
  Rng rng(1);
  Matrix x;
  std::vector<double> y, offset;
  make_data(1200, x, y, offset, rng);
  const RfeResult res = rfe_cv(x, y, fast_params(), offset);

  ASSERT_EQ(res.relevance.size(), 6u);
  // The informative features belong to the best subset in (almost) every
  // fold; noise features rarely do.
  EXPECT_GT(res.relevance[0], 0.7);
  EXPECT_GT(res.relevance[3], 0.7);
  for (std::size_t f : {1u, 2u, 4u, 5u}) EXPECT_LT(res.relevance[f], 0.6) << f;
  // Survival ranking agrees.
  EXPECT_GT(res.survival[0], res.survival[1]);
  EXPECT_GT(res.survival[3], res.survival[4]);
}

TEST(Rfe, ReportsMapeOfFullModelAndBaseline) {
  Rng rng(2);
  Matrix x;
  std::vector<double> y, offset;
  make_data(1200, x, y, offset, rng);
  const RfeResult res = rfe_cv(x, y, fast_params(), offset);
  EXPECT_GT(res.cv_mape_full, 0.0);
  EXPECT_LT(res.cv_mape_full, 10.0);  // offset 50 +- ~7: a few percent error
  // The target has a nonlinear component: GBR beats the linear baseline.
  EXPECT_LT(res.cv_mape_full, res.cv_mape_linear * 1.05);
}

TEST(Rfe, GroupFoldsKeepGroupsTogether) {
  Rng rng(3);
  Matrix x;
  std::vector<double> y, offset;
  make_data(600, x, y, offset, rng);
  std::vector<std::size_t> groups(600);
  for (std::size_t i = 0; i < 600; ++i) groups[i] = i / 30;  // 20 groups
  const RfeResult res = rfe_cv(x, y, fast_params(), offset, groups);
  EXPECT_GT(res.relevance[0], 0.5);
}

TEST(Rfe, WorksWithoutOffset) {
  Rng rng(4);
  Matrix x(300, 3);
  std::vector<double> y(300);
  for (std::size_t i = 0; i < 300; ++i) {
    for (std::size_t c = 0; c < 3; ++c) x(i, c) = rng.uniform(0.5, 1.5);
    y[i] = 10.0 + 3.0 * x(i, 1);
  }
  RfeParams p = fast_params();
  const RfeResult res = rfe_cv(x, y, p);
  EXPECT_GT(res.relevance[1], 0.7);
}

TEST(Rfe, RequiresAtLeastTwoFeatures) {
  Matrix x(10, 1);
  const std::vector<double> y(10, 1.0);
  EXPECT_THROW((void)rfe_cv(x, y, fast_params()), ContractError);
}

TEST(Rfe, PrebuiltBinnedViewMatchesMatrixOverload) {
  // Callers that bin the sample matrix themselves (the deviation
  // analysis) must get exactly what the convenience overload computes.
  Rng rng(5);
  Matrix x;
  std::vector<double> y, offset;
  make_data(600, x, y, offset, rng);
  const RfeParams p = fast_params();
  const BinnedDataset binned(x, p.gbr.tree.histogram_bins);
  const RfeResult via_matrix = rfe_cv(x, y, p, offset);
  const RfeResult via_binned = rfe_cv(binned, y, p, offset);
  EXPECT_EQ(via_matrix.relevance, via_binned.relevance);
  EXPECT_EQ(via_matrix.survival, via_binned.survival);
  EXPECT_EQ(via_matrix.cv_mape_full, via_binned.cv_mape_full);
  EXPECT_EQ(via_matrix.cv_mape_linear, via_binned.cv_mape_linear);
}

TEST(Rfe, BitIdenticalAcrossThreadCounts) {
  // Fold-parallel CV must reproduce the single-thread result exactly:
  // per-fold substream seeds plus fold-ordered combining make every score
  // a pure function of the inputs.
  Rng rng(3);
  Matrix x;
  std::vector<double> y, offset;
  make_data(600, x, y, offset, rng);

  exec::ThreadPool::instance().resize(1);
  const RfeResult serial = rfe_cv(x, y, fast_params(), offset);
  for (int threads : {2, 8}) {
    exec::ThreadPool::instance().resize(threads);
    const RfeResult res = rfe_cv(x, y, fast_params(), offset);
    EXPECT_EQ(res.cv_mape_full, serial.cv_mape_full) << threads;
    EXPECT_EQ(res.cv_mape_linear, serial.cv_mape_linear) << threads;
    EXPECT_EQ(res.relevance, serial.relevance) << threads;
    EXPECT_EQ(res.survival, serial.survival) << threads;
  }
  exec::ThreadPool::instance().resize(exec::resolve_threads());
}

}  // namespace
}  // namespace dfv::ml
