#include "ml/kfold.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/check.hpp"

namespace dfv::ml {
namespace {

class KFoldParam : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(KFoldParam, PartitionProperties) {
  const auto [n, k] = GetParam();
  Rng rng(4);
  const auto folds = kfold(std::size_t(n), std::size_t(k), rng);
  ASSERT_EQ(folds.size(), std::size_t(k));

  std::set<std::size_t> all_test;
  for (const auto& f : folds) {
    // Train/test disjoint and covering.
    EXPECT_EQ(f.train.size() + f.test.size(), std::size_t(n));
    std::set<std::size_t> tr(f.train.begin(), f.train.end());
    for (auto i : f.test) EXPECT_EQ(tr.count(i), 0u);
    for (auto i : f.test) {
      EXPECT_TRUE(all_test.insert(i).second) << "sample in two test sets";
    }
    // Balanced folds.
    EXPECT_LE(f.test.size(), std::size_t(n / k) + 1);
    EXPECT_GE(f.test.size(), std::size_t(n / k));
  }
  EXPECT_EQ(all_test.size(), std::size_t(n));
}

INSTANTIATE_TEST_SUITE_P(Shapes, KFoldParam,
                         ::testing::Values(std::pair{10, 2}, std::pair{10, 10},
                                           std::pair{103, 10}, std::pair{50, 3},
                                           std::pair{1000, 7}));

TEST(KFold, RejectsBadArguments) {
  Rng rng(1);
  EXPECT_THROW((void)kfold(5, 1, rng), ContractError);
  EXPECT_THROW((void)kfold(3, 4, rng), ContractError);
}

TEST(KFold, ShuffleDependsOnSeed) {
  Rng r1(1), r2(2);
  const auto f1 = kfold(100, 5, r1);
  const auto f2 = kfold(100, 5, r2);
  EXPECT_NE(f1[0].test, f2[0].test);
}

TEST(GroupKFold, GroupsNeverStraddleFolds) {
  // 30 samples in 10 groups of 3.
  std::vector<std::size_t> groups;
  for (std::size_t g = 0; g < 10; ++g)
    for (int i = 0; i < 3; ++i) groups.push_back(g);
  Rng rng(9);
  const auto folds = group_kfold(groups, 5, rng);
  ASSERT_EQ(folds.size(), 5u);
  for (const auto& f : folds) {
    std::set<std::size_t> test_groups, train_groups;
    for (auto i : f.test) test_groups.insert(groups[i]);
    for (auto i : f.train) train_groups.insert(groups[i]);
    for (auto g : test_groups) EXPECT_EQ(train_groups.count(g), 0u);
    // All 3 samples of each test group are present.
    EXPECT_EQ(f.test.size(), test_groups.size() * 3);
  }
}

TEST(GroupKFold, CoversAllSamplesExactlyOnce) {
  std::vector<std::size_t> groups = {0, 0, 1, 2, 2, 2, 3, 4, 4, 5};
  Rng rng(3);
  const auto folds = group_kfold(groups, 3, rng);
  std::vector<int> seen(groups.size(), 0);
  for (const auto& f : folds)
    for (auto i : f.test) ++seen[i];
  for (int s : seen) EXPECT_EQ(s, 1);
}

TEST(GroupKFold, RequiresEnoughGroups) {
  std::vector<std::size_t> groups = {0, 0, 1, 1};
  Rng rng(3);
  EXPECT_THROW((void)group_kfold(groups, 3, rng), ContractError);
}

}  // namespace
}  // namespace dfv::ml
