#include "mon/counter_model.hpp"

#include <gtest/gtest.h>

#include <string>

#include "common/check.hpp"

namespace dfv::mon {
namespace {

TEST(CounterCatalog, HasThirteenEntriesInTableOrder) {
  EXPECT_EQ(kNumCounters, 13);
  EXPECT_STREQ(counter_name(Counter::RT_FLIT_TOT), "RT_FLIT_TOT");
  EXPECT_STREQ(counter_name(Counter::PT_RB_2X_USG), "PT_RB_2X_USG");
  EXPECT_EQ(counter_from_index(0), Counter::RT_FLIT_TOT);
  EXPECT_EQ(counter_from_index(12), Counter::PT_RB_2X_USG);
  EXPECT_THROW((void)counter_from_index(13), ContractError);
}

TEST(CounterCatalog, AriesNamesPresent) {
  for (int i = 0; i < kNumCounters; ++i) {
    const CounterInfo& info = counter_info(counter_from_index(i));
    EXPECT_TRUE(std::string(info.aries_name).starts_with("AR_RTR_"));
    EXPECT_FALSE(std::string(info.description).empty());
  }
  EXPECT_TRUE(counter_info(Counter::RT_FLIT_TOT).derived);
  EXPECT_FALSE(counter_info(Counter::RT_RB_STL).derived);
}

TEST(CounterCatalog, LdmsFeatureNames) {
  EXPECT_EQ(ldms_io_feature_names().size(), std::size_t(kNumIoFeatures));
  EXPECT_EQ(ldms_sys_feature_names().size(), std::size_t(kNumSysFeatures));
  EXPECT_STREQ(ldms_io_feature_names()[0], "IO_RT_FLIT_TOT");
  EXPECT_STREQ(ldms_sys_feature_names()[3], "SYS_PT_PKT_TOT");
}

class CounterModelTest : public ::testing::Test {
 protected:
  CounterModelTest() : topo_(net::DragonflyConfig::small(4)), model_(topo_) {
    bg_.resize(topo_);
    job_.resize(topo_);
  }
  net::Topology topo_;
  CounterModel model_;
  net::RateLoads bg_;
  net::ByteLoads job_;
};

TEST_F(CounterModelTest, ZeroTrafficZeroCounters) {
  const CounterVec v = model_.router_counters(0, bg_, job_, 1.0);
  for (double x : v) EXPECT_DOUBLE_EQ(x, 0.0);
}

TEST_F(CounterModelTest, DerivedCounterRelations) {
  job_.inject_bytes[0] = 64e6;
  job_.eject_bytes[0] = 16e6;
  const CounterVec v = model_.router_counters(0, bg_, job_, 1.0);
  EXPECT_NEAR(v[size_t(Counter::PT_FLIT_TOT)],
              v[size_t(Counter::PT_FLIT_VC0)] + v[size_t(Counter::PT_FLIT_VC4)], 1e-6);
  EXPECT_NEAR(v[size_t(Counter::PT_PKT_TOT)],
              v[size_t(Counter::PT_FLIT_TOT)] / topo_.config().flits_per_packet, 1e-6);
  EXPECT_NEAR(v[size_t(Counter::PT_FLIT_TOT)],
              (64e6 + 16e6) / topo_.config().flit_bytes, 1e-3);
}

TEST_F(CounterModelTest, TransitTrafficCountsOnReceivingRouter) {
  // Put bytes on one directed link and check the flits appear at its
  // destination router only.
  const net::LinkId e = topo_.green_link(0, 0, 0, 1);
  const net::LinkInfo& li = topo_.link(e);
  job_.link_bytes[std::size_t(e)] = 32e6;
  const CounterVec at_to = model_.router_counters(li.to, bg_, job_, 1.0);
  const CounterVec at_other = model_.router_counters(
      topo_.router_at(1, 0, 0), bg_, job_, 1.0);
  EXPECT_NEAR(at_to[size_t(Counter::RT_FLIT_TOT)], 32e6 / topo_.config().flit_bytes,
              1e-3);
  EXPECT_DOUBLE_EQ(at_other[size_t(Counter::RT_FLIT_TOT)], 0.0);
  EXPECT_NEAR(at_to[size_t(Counter::RT_PKT_TOT)],
              at_to[size_t(Counter::RT_FLIT_TOT)] / topo_.config().flits_per_packet,
              1e-6);
}

TEST_F(CounterModelTest, StallsRequireCongestion) {
  // Light load: no stalls.
  job_.inject_bytes[0] = 0.01 * topo_.config().endpoint_bw;
  CounterVec light = model_.router_counters(0, bg_, job_, 1.0);
  EXPECT_LT(light[size_t(Counter::PT_RB_STL_RQ)], 1e-6);

  // Saturating injection: request stalls appear.
  job_.inject_bytes[0] = 1.2 * topo_.config().endpoint_bw;
  CounterVec heavy = model_.router_counters(0, bg_, job_, 1.0);
  EXPECT_GT(heavy[size_t(Counter::PT_RB_STL_RQ)], 1e6);
  // Ejection side unaffected.
  EXPECT_LT(heavy[size_t(Counter::PT_RB_STL_RS)], 1e-6);
}

TEST_F(CounterModelTest, RouterTileStallsFromHotLink) {
  const net::LinkId e = topo_.green_link(0, 0, 0, 1);
  job_.link_bytes[std::size_t(e)] = 1.1 * topo_.link(e).capacity;  // dt=1
  const CounterVec v = model_.router_counters(topo_.link(e).to, bg_, job_, 1.0);
  EXPECT_GT(v[size_t(Counter::RT_RB_STL)], 0.0);
  EXPECT_GT(v[size_t(Counter::RT_RB_2X_USG)], 0.0);
}

TEST_F(CounterModelTest, BackgroundRatesIntegrateOverDt) {
  bg_.inject_rate[0] = 1e9;
  const CounterVec v1 = model_.router_counters(0, bg_, job_, 1.0);
  const CounterVec v2 = model_.router_counters(0, bg_, job_, 2.0);
  EXPECT_NEAR(v2[size_t(Counter::PT_FLIT_TOT)], 2.0 * v1[size_t(Counter::PT_FLIT_TOT)],
              1e-3);
}

TEST_F(CounterModelTest, AggregateSumsRouters) {
  job_.inject_bytes[0] = 8e6;
  job_.inject_bytes[1] = 8e6;
  const std::vector<net::RouterId> both = {0, 1};
  const std::vector<net::RouterId> just0 = {0};
  const CounterVec a = model_.aggregate(both, bg_, job_, 1.0);
  const CounterVec b = model_.aggregate(just0, bg_, job_, 1.0);
  EXPECT_NEAR(a[size_t(Counter::PT_FLIT_TOT)], 2.0 * b[size_t(Counter::PT_FLIT_TOT)],
              1e-6);
}

TEST_F(CounterModelTest, ResponseFractionSplitsVcs) {
  job_.inject_bytes[0] = 100e6;
  const CounterVec v = model_.router_counters(0, bg_, job_, 1.0);
  const double rf = model_.params().response_fraction;
  EXPECT_NEAR(v[size_t(Counter::PT_FLIT_VC4)] / v[size_t(Counter::PT_FLIT_TOT)], rf,
              1e-9);
}

TEST_F(CounterModelTest, RejectsNonPositiveDt) {
  EXPECT_THROW((void)model_.router_counters(0, bg_, job_, 0.0), ContractError);
}

}  // namespace
}  // namespace dfv::mon
