#include "ml/attention.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

#include <cmath>

#include "common/rng.hpp"
#include "ml/metrics.hpp"

namespace dfv::ml {
namespace {

AttentionParams fast_params(std::uint64_t seed = 0xa77) {
  AttentionParams p;
  p.d_model = 8;
  p.d_hidden = 8;
  p.epochs = 60;
  p.batch = 16;
  p.seed = seed;
  return p;
}

/// Windows where the target is a weighted sum of one feature's history:
/// y = 2 * x[t-1][f0] + x[t-2][f0] + 60 (f1 is noise).
void make_temporal(std::size_t n, int m, Matrix& x, std::vector<double>& y, Rng& rng) {
  const int F = 2;
  x = Matrix(n, std::size_t(m) * F);
  y.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (int t = 0; t < m; ++t) {
      x(i, std::size_t(t) * F + 0) = rng.uniform(-1, 1);
      x(i, std::size_t(t) * F + 1) = rng.uniform(-1, 1);
    }
    y[i] = 60.0 + 2.0 * x(i, std::size_t(m - 1) * F) + x(i, std::size_t(m - 2) * F);
  }
}

TEST(Attention, LearnsTemporalPattern) {
  Rng rng(1);
  Matrix x;
  std::vector<double> y;
  const int m = 4;
  make_temporal(800, m, x, y, rng);

  AttentionParams p = fast_params();
  p.epochs = 150;
  AttentionForecaster model(m, 2, p);
  model.fit(x, y);

  // Held-out windows.
  Matrix xt;
  std::vector<double> yt;
  make_temporal(200, m, xt, yt, rng);
  const double err = mape(yt, model.predict(xt));
  EXPECT_LT(err, 1.5);  // % error on targets near 60

  // Far better than predicting the mean.
  const std::vector<double> mean_pred(yt.size(), 60.0);
  EXPECT_LT(err, 0.5 * mape(yt, mean_pred));
}

TEST(Attention, OverfitsTinyDataset) {
  Rng rng(2);
  Matrix x;
  std::vector<double> y;
  make_temporal(16, 3, x, y, rng);
  AttentionParams p = fast_params();
  p.epochs = 300;
  AttentionForecaster model(3, 2, p);
  model.fit(x, y);
  EXPECT_LT(mape(y, model.predict(x)), 1.0);
}

TEST(Attention, PermutationImportanceFindsInformativeFeature) {
  Rng rng(3);
  Matrix x;
  std::vector<double> y;
  make_temporal(800, 4, x, y, rng);
  AttentionForecaster model(4, 2, fast_params());
  model.fit(x, y);
  Rng perm_rng(7);
  const auto imp = model.permutation_importance(x, y, perm_rng);
  ASSERT_EQ(imp.size(), 2u);
  EXPECT_GT(imp[0], 0.8);  // feature 0 drives the target
  EXPECT_LT(imp[1], 0.2);
}

TEST(Attention, AttentionWeightsAreDistribution) {
  Rng rng(4);
  Matrix x;
  std::vector<double> y;
  const int m = 5;
  make_temporal(300, m, x, y, rng);
  AttentionForecaster model(m, 2, fast_params());
  model.fit(x, y);
  const auto w = model.attention_weights(x.row(0));
  ASSERT_EQ(w.size(), std::size_t(m));
  double sum = 0.0;
  for (double v : w) {
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Attention, DeterministicGivenSeed) {
  Rng rng(5);
  Matrix x;
  std::vector<double> y;
  make_temporal(200, 3, x, y, rng);
  AttentionForecaster a(3, 2, fast_params(42)), b(3, 2, fast_params(42));
  a.fit(x, y);
  b.fit(x, y);
  for (std::size_t i = 0; i < 10; ++i)
    EXPECT_DOUBLE_EQ(a.predict_one(x.row(i)), b.predict_one(x.row(i)));
}

TEST(Attention, BatchedFitBitIdenticalToReference) {
  // The blocked-kernel fast path and the scalar per-sample reference
  // must produce the exact same model: identical bits, not just close.
  Rng rng(11);
  Matrix x;
  std::vector<double> y;
  make_temporal(203, 5, x, y, rng);  // odd n exercises the partial slab
  AttentionForecaster fast(5, 2, fast_params(7)), ref(5, 2, fast_params(7));
  fast.fit(x, y);
  ref.fit_reference(x, y);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const double pf = fast.predict_one(x.row(i));
    const double pr = ref.predict_one(x.row(i));
    EXPECT_EQ(pf, pr) << "prediction bits diverge at row " << i;
  }
}

TEST(Attention, BatchedPredictMatchesPredictOne) {
  Rng rng(12);
  Matrix x;
  std::vector<double> y;
  make_temporal(61, 4, x, y, rng);
  AttentionForecaster model(4, 2, fast_params());
  model.fit(x, y);
  const std::vector<double> batched = model.predict(x);
  ASSERT_EQ(batched.size(), x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i)
    EXPECT_EQ(batched[i], model.predict_one(x.row(i))) << "row " << i;
}

TEST(Attention, StridedViewFitMatchesDenseFit) {
  // Feeding the same samples through a strided RowBatch view (window
  // chunks gathered from a wider table) must match the dense fit bit
  // for bit — this is the contract the forecasting window cache relies
  // on.
  Rng rng(13);
  const std::size_t n = 97, m = 3, width = 2, stride = 5;
  Matrix table(n * m, stride);  // each sample: m rows of a 5-wide table
  for (std::size_t r = 0; r < table.rows(); ++r)
    for (std::size_t c = 0; c < stride; ++c) table(r, c) = rng.uniform(-1, 1);
  std::vector<const double*> base(n);
  for (std::size_t i = 0; i < n; ++i) base[i] = table.row(i * m).data();
  const RowBatch views{base, m, width, stride};

  Matrix dense(n, m * width);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    views.gather(i, dense.row(i).data());
    y[i] = 60.0 + 2.0 * dense(i, (m - 1) * width) + dense(i, (m - 2) * width);
  }

  AttentionForecaster a(int(m), int(width), fast_params(21));
  AttentionForecaster b(int(m), int(width), fast_params(21));
  a.fit(views, y);
  b.fit(dense, y);
  const std::vector<double> pa = a.predict(views);
  const std::vector<double> pb = b.predict(dense);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(pa[i], pb[i]) << "row " << i;
}

TEST(Attention, InputValidation) {
  AttentionForecaster model(3, 2, fast_params());
  Matrix wrong(4, 5);  // should be 3*2 = 6 columns
  const std::vector<double> y(4, 1.0);
  EXPECT_THROW(model.fit(wrong, y), ContractError);
  EXPECT_THROW((void)AttentionForecaster(0, 2), ContractError);
}

}  // namespace
}  // namespace dfv::ml
