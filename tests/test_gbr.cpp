#include "ml/gbr.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

#include <cmath>

#include "common/rng.hpp"
#include "exec/exec.hpp"
#include "ml/linear.hpp"
#include "ml/metrics.hpp"

namespace dfv::ml {
namespace {

/// Nonlinear test function with two informative features of four.
void make_nonlinear(std::size_t n, Matrix& x, std::vector<double>& y, Rng& rng,
                    double noise = 0.0) {
  x = Matrix(n, 4);
  y.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < 4; ++c) x(i, c) = rng.uniform(-1, 1);
    y[i] = std::sin(3.0 * x(i, 0)) + x(i, 2) * x(i, 2) + noise * rng.normal();
  }
}

TEST(Gbr, FitsNonlinearFunction) {
  Rng rng(1);
  Matrix x;
  std::vector<double> y;
  make_nonlinear(2000, x, y, rng);
  GbrParams params;
  params.n_trees = 80;
  params.subsample = 0.7;
  GradientBoostedRegressor gbr(params);
  gbr.fit(x, y);
  EXPECT_GT(r2(y, gbr.predict(x)), 0.9);
}

TEST(Gbr, BeatsLinearBaselineOnNonlinearData) {
  Rng rng(2);
  Matrix x;
  std::vector<double> y;
  make_nonlinear(2000, x, y, rng, 0.05);
  GradientBoostedRegressor gbr;
  gbr.fit(x, y);
  LinearRegression lin;
  lin.fit(x, y);
  EXPECT_LT(rmse(y, gbr.predict(x)), rmse(y, lin.predict(x)));
}

TEST(Gbr, ImportancesIdentifyInformativeFeatures) {
  Rng rng(3);
  Matrix x;
  std::vector<double> y;
  make_nonlinear(3000, x, y, rng);
  GradientBoostedRegressor gbr;
  gbr.fit(x, y);
  const auto imp = gbr.feature_importances();
  ASSERT_EQ(imp.size(), 4u);
  double total = 0.0;
  for (double v : imp) total += v;
  EXPECT_NEAR(total, 1.0, 1e-9);
  // Features 0 and 2 are informative; 1 and 3 are noise.
  EXPECT_GT(imp[0] + imp[2], 0.9);
  EXPECT_LT(imp[1] + imp[3], 0.1);
}

TEST(Gbr, MorTreesReduceTrainError) {
  Rng rng(4);
  Matrix x;
  std::vector<double> y;
  make_nonlinear(1000, x, y, rng);
  GbrParams few, many;
  few.n_trees = 5;
  many.n_trees = 80;
  GradientBoostedRegressor a(few), b(many);
  a.fit(x, y);
  b.fit(x, y);
  EXPECT_LT(rmse(y, b.predict(x)), rmse(y, a.predict(x)));
  EXPECT_EQ(a.tree_count(), 5u);
  EXPECT_EQ(b.tree_count(), 80u);
}

TEST(Gbr, ConstantTargetPredictsConstant) {
  Matrix x(50, 2);
  Rng rng(5);
  for (std::size_t i = 0; i < 50; ++i)
    for (std::size_t c = 0; c < 2; ++c) x(i, c) = rng.normal();
  const std::vector<double> y(50, -4.5);
  GradientBoostedRegressor gbr;
  gbr.fit(x, y);
  EXPECT_NEAR(gbr.predict_one(x.row(7)), -4.5, 1e-9);
  // No splits => all-zero importances.
  const auto imp = gbr.feature_importances();
  for (double v : imp) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Gbr, DeterministicGivenSeed) {
  Rng rng(6);
  Matrix x;
  std::vector<double> y;
  make_nonlinear(500, x, y, rng);
  GbrParams params;
  params.seed = 99;
  GradientBoostedRegressor a(params), b(params);
  a.fit(x, y);
  b.fit(x, y);
  for (std::size_t i = 0; i < 20; ++i)
    EXPECT_DOUBLE_EQ(a.predict_one(x.row(i)), b.predict_one(x.row(i)));
}

TEST(Gbr, PredictBinnedMatchesPredictOne) {
  // The in-sample leaf-update path and the code-traversal predictor must
  // agree exactly with the raw-row traversal for every row of the
  // training matrix.
  Rng rng(7);
  Matrix x;
  std::vector<double> y;
  make_nonlinear(800, x, y, rng, 0.05);
  const BinnedDataset binned(x, GbrParams{}.tree.histogram_bins);
  std::vector<std::size_t> rows(800);
  for (std::size_t i = 0; i < 800; ++i) rows[i] = i;
  GradientBoostedRegressor model;
  model.fit(binned, y, rows, FeatureMask::all(4));
  for (std::size_t r = 0; r < 800; ++r)
    EXPECT_DOUBLE_EQ(model.predict_binned(binned, r), model.predict_one(x.row(r)));
}

TEST(Gbr, AllRowsOverloadMatchesExplicitIdentityRows) {
  // The row-free overload keeps the identity row list implicit (no 8
  // bytes/row index array); it must reproduce the explicit-rows fit bit
  // for bit — same RNG consumption, same residuals, same splits — for
  // both the subsampled and the full-row (subsample == 1.0) configs.
  Rng rng(11);
  Matrix x;
  std::vector<double> y;
  make_nonlinear(700, x, y, rng, 0.05);
  std::vector<std::size_t> rows(700);
  for (std::size_t i = 0; i < 700; ++i) rows[i] = i;
  for (const double subsample : {0.4, 1.0}) {
    GbrParams params;
    params.n_trees = 20;
    params.subsample = subsample;
    const BinnedDataset binned(x, params.tree.histogram_bins);
    GradientBoostedRegressor implicit_rows(params), explicit_rows(params);
    implicit_rows.fit(binned, y, FeatureMask::all(4));
    explicit_rows.fit(binned, y, rows, FeatureMask::all(4));
    ASSERT_EQ(implicit_rows.tree_count(), explicit_rows.tree_count());
    for (std::size_t r = 0; r < 700; ++r)
      EXPECT_EQ(implicit_rows.predict_one(x.row(r)), explicit_rows.predict_one(x.row(r)));
    const auto ia = implicit_rows.feature_importances();
    const auto ea = explicit_rows.feature_importances();
    for (std::size_t f = 0; f < ia.size(); ++f) EXPECT_EQ(ia[f], ea[f]);
  }
}

TEST(Gbr, MaskedFitMatchesMaterializedSubmatrix) {
  // Boosting under a feature mask must reproduce, bit for bit, the fit
  // on the materialized column subset: the same rows produce the same
  // edges, the subsample RNG consumes identically, and split/leaf
  // arithmetic sees the same numbers in the same order.
  Rng rng(8);
  Matrix x;
  std::vector<double> y;
  make_nonlinear(900, x, y, rng, 0.05);
  const std::vector<std::size_t> active = {0, 2, 3};
  const Matrix x_sub = x.select_cols(active);

  GbrParams params;
  params.n_trees = 25;
  const BinnedDataset binned(x, params.tree.histogram_bins);
  const BinnedDataset binned_sub(x_sub, params.tree.histogram_bins);
  std::vector<std::size_t> rows(900);
  for (std::size_t i = 0; i < 900; ++i) rows[i] = i;

  GradientBoostedRegressor masked(params), reference(params);
  masked.fit(binned, y, rows, FeatureMask::of(4, active));
  reference.fit(binned_sub, y, rows, FeatureMask::all(3));

  for (std::size_t r = 0; r < 900; ++r)
    EXPECT_DOUBLE_EQ(masked.predict_one(x.row(r)), reference.predict_one(x_sub.row(r)));
  const auto mi = masked.feature_importances();
  const auto ri = reference.feature_importances();
  EXPECT_DOUBLE_EQ(mi[1], 0.0);  // masked-out feature never splits
  for (std::size_t k = 0; k < active.size(); ++k)
    EXPECT_DOUBLE_EQ(mi[active[k]], ri[k]);
}

TEST(Gbr, BitIdenticalAcrossThreadCounts) {
  // Binned fits parallelize node histogram scans, binning, and the
  // out-of-sample update; all of it must be bit-identical at any pool
  // width (disjoint writes + chunk-ordered combines).
  Rng rng(9);
  Matrix x;
  std::vector<double> y;
  make_nonlinear(3000, x, y, rng, 0.05);
  GbrParams params;
  params.tree.max_depth = 5;
  params.tree.min_samples_leaf = 5;

  exec::ThreadPool::instance().resize(1);
  GradientBoostedRegressor serial(params);
  serial.fit(x, y);
  const auto serial_pred = serial.predict(x);
  const auto serial_imp = serial.feature_importances();
  for (int threads : {2, 8}) {
    exec::ThreadPool::instance().resize(threads);
    GradientBoostedRegressor par(params);
    par.fit(x, y);
    EXPECT_EQ(par.predict(x), serial_pred) << threads;
    EXPECT_EQ(par.feature_importances(), serial_imp) << threads;
  }
  exec::ThreadPool::instance().resize(exec::resolve_threads());
}

TEST(Gbr, InputValidation) {
  GradientBoostedRegressor gbr;
  Matrix x(3, 1);
  const std::vector<double> wrong(2, 0.0);
  EXPECT_THROW(gbr.fit(x, wrong), ContractError);
  GbrParams bad;
  bad.subsample = 0.0;
  GradientBoostedRegressor g2(bad);
  const std::vector<double> y(3, 0.0);
  EXPECT_THROW(g2.fit(x, y), ContractError);
}

}  // namespace
}  // namespace dfv::ml
