#include "common/timeseries.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "common/stats.hpp"

namespace dfv {
namespace {

TEST(OuProcess, MeanReversion) {
  Rng rng(1);
  OuProcess ou(/*theta=*/0.5, /*mu=*/10.0, /*sigma=*/0.0, /*x0=*/0.0);
  for (int i = 0; i < 100; ++i) (void)ou.step(1.0, rng);
  EXPECT_NEAR(ou.value(), 10.0, 1e-6);  // no noise: pure decay to mu
}

TEST(OuProcess, StationaryVariance) {
  Rng rng(2);
  const double theta = 1.0, sigma = 0.5;
  OuProcess ou(theta, 0.0, sigma, 0.0);
  std::vector<double> xs;
  for (int i = 0; i < 60000; ++i) xs.push_back(ou.step(0.5, rng));
  // Stationary variance of OU = sigma^2 / (2 theta).
  EXPECT_NEAR(stats::variance(xs), sigma * sigma / (2 * theta), 0.02);
  EXPECT_NEAR(stats::mean(xs), 0.0, 0.02);
}

TEST(OuProcess, AutocorrelationDecaysWithTheta) {
  Rng rng(3);
  OuProcess slow(0.01, 0.0, 1.0, 0.0), fast(5.0, 0.0, 1.0, 0.0);
  std::vector<double> xs_slow, xs_fast;
  for (int i = 0; i < 20000; ++i) {
    xs_slow.push_back(slow.step(1.0, rng));
    xs_fast.push_back(fast.step(1.0, rng));
  }
  EXPECT_GT(autocorrelation_lag1(xs_slow), 0.9);
  EXPECT_LT(autocorrelation_lag1(xs_fast), 0.2);
}

TEST(Ar1, StationaryVariance) {
  Rng rng(4);
  const double phi = 0.8, sigma = 1.0;
  Ar1 ar(phi, sigma);
  std::vector<double> xs;
  for (int i = 0; i < 60000; ++i) xs.push_back(ar.step(rng));
  EXPECT_NEAR(stats::variance(xs), sigma * sigma / (1 - phi * phi), 0.1);
  EXPECT_NEAR(autocorrelation_lag1(xs), phi, 0.02);
}

TEST(MovingAverage, SmoothsAndPreservesConstant) {
  const std::vector<double> constant(10, 3.0);
  EXPECT_EQ(moving_average(constant, 2), constant);

  const std::vector<double> spiky = {0, 0, 10, 0, 0};
  const auto sm = moving_average(spiky, 1);
  EXPECT_NEAR(sm[2], 10.0 / 3.0, 1e-12);
  EXPECT_NEAR(sm[0], 0.0, 1e-12);
}

TEST(MeanCurve, ColumnMeans) {
  const std::vector<std::vector<double>> series = {{1, 2, 3}, {3, 4, 5}};
  const auto m = mean_curve(series);
  ASSERT_EQ(m.size(), 3u);
  EXPECT_DOUBLE_EQ(m[0], 2.0);
  EXPECT_DOUBLE_EQ(m[2], 4.0);
}

TEST(MeanCurve, RejectsRaggedSeries) {
  const std::vector<std::vector<double>> ragged = {{1, 2}, {1}};
  EXPECT_THROW((void)mean_curve(ragged), ContractError);
}

TEST(RemoveMeanCurve, Subtracts) {
  const std::vector<double> xs = {5, 6, 7};
  const std::vector<double> mean = {1, 2, 3};
  const auto out = remove_mean_curve(xs, mean);
  EXPECT_DOUBLE_EQ(out[0], 4.0);
  EXPECT_DOUBLE_EQ(out[2], 4.0);
}

TEST(Autocorrelation, EdgeCases) {
  EXPECT_DOUBLE_EQ(autocorrelation_lag1(std::vector<double>{1.0, 2.0}), 0.0);
  EXPECT_DOUBLE_EQ(autocorrelation_lag1(std::vector<double>(10, 4.0)), 0.0);
}

}  // namespace
}  // namespace dfv
