#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace dfv {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 2);
}

TEST(Rng, SplitProducesDistinctStreams) {
  Rng parent(7);
  Rng c1 = parent.split(1);
  Rng c2 = parent.split(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (c1() == c2());
  EXPECT_LT(same, 2);
}

TEST(Rng, SplitIsDeterministic) {
  Rng p1(9), p2(9);
  Rng a = p1.split(5), b = p2.split(5);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(4);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIndexCoversRangeUniformly) {
  Rng r(5);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[std::size_t(r.uniform_index(10))];
  for (int c : counts) {
    EXPECT_GT(c, n / 10 * 0.9);
    EXPECT_LT(c, n / 10 * 1.1);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng r(6);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_int(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
  Rng r(8);
  double sum = 0.0, sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, LognormalMedian) {
  Rng r(9);
  std::vector<double> xs(20001);
  for (auto& x : xs) x = r.lognormal(0.0, 0.5);
  std::nth_element(xs.begin(), xs.begin() + 10000, xs.end());
  EXPECT_NEAR(xs[10000], 1.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng r(10);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, PoissonMeanSmallAndLarge) {
  Rng r(11);
  for (double mean : {0.5, 4.0, 80.0}) {
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) sum += double(r.poisson(mean));
    EXPECT_NEAR(sum / n, mean, mean * 0.06 + 0.05) << "mean=" << mean;
  }
}

TEST(Rng, ParetoBoundedBelowByScale) {
  Rng r(12);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(r.pareto(2.0, 1.5), 2.0);
}

TEST(Rng, BernoulliProbability) {
  Rng r(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(0.3);
  EXPECT_NEAR(double(hits) / n, 0.3, 0.01);
}

TEST(Rng, WeightedIndexFollowsWeights) {
  Rng r(14);
  const std::vector<double> w = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[r.weighted_index(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(double(counts[2]) / double(counts[0]), 3.0, 0.25);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng r(15);
  for (int trial = 0; trial < 50; ++trial) {
    const auto s = r.sample_without_replacement(20, 7);
    ASSERT_EQ(s.size(), 7u);
    std::set<std::size_t> uniq(s.begin(), s.end());
    EXPECT_EQ(uniq.size(), 7u);
    for (auto v : s) EXPECT_LT(v, 20u);
  }
}

TEST(Rng, SampleWithoutReplacementFullSet) {
  Rng r(16);
  const auto s = r.sample_without_replacement(5, 5);
  std::set<std::size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 5u);
}

TEST(Rng, ShufflePreservesElements) {
  Rng r(17);
  std::vector<int> v = {1, 2, 3, 4, 5, 6};
  auto sorted = v;
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, HashCombineDiffers) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
  EXPECT_NE(hash_combine(1, 2), hash_combine(1, 3));
  EXPECT_EQ(hash_combine(1, 2), hash_combine(1, 2));
}

}  // namespace
}  // namespace dfv
