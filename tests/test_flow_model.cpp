#include "net/flow_model.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace dfv::net {
namespace {

class FlowModelTest : public ::testing::Test {
 protected:
  FlowModelTest() : topo_(DragonflyConfig::small(4)), model_(topo_) {
    bg_.resize(topo_);
  }
  Topology topo_;
  FlowModel model_;
  RateLoads bg_;
  Rng rng_{55};
};

TEST(StallFraction, ShapeProperties) {
  EXPECT_DOUBLE_EQ(stall_fraction(0.0), 0.0);
  EXPECT_LT(stall_fraction(0.1), 1e-9);  // below threshold: no stalls
  EXPECT_LT(stall_fraction(0.3), 0.1);
  // Monotone non-decreasing.
  double prev = 0.0;
  for (double u = 0.0; u <= 2.0; u += 0.01) {
    const double s = stall_fraction(u);
    EXPECT_GE(s, prev - 1e-12) << "u=" << u;
    prev = s;
  }
  // Clamped for absurd overload.
  EXPECT_LE(stall_fraction(50.0), 6.0);
}

TEST_F(FlowModelTest, BackgroundRoutingConservesInjectedRates) {
  const std::vector<Demand> demands = {{0, 20, 1e9}, {5, 40, 2e9}};
  RateLoads out;
  out.resize(topo_);
  model_.route_background(demands, RoutingPolicy::Minimal, 1.0, rng_, out);
  EXPECT_DOUBLE_EQ(out.inject_rate[0], 1e9);
  EXPECT_DOUBLE_EQ(out.inject_rate[5], 2e9);
  EXPECT_DOUBLE_EQ(out.eject_rate[20], 1e9);
  EXPECT_DOUBLE_EQ(out.eject_rate[40], 2e9);
  // Link rates sum to demand rate times hop count (1..5 hops per chunk).
  double total_link = 0.0;
  for (double v : out.link_rate) total_link += v;
  EXPECT_GE(total_link, 3e9 * 1);
  EXPECT_LE(total_link, 3e9 * 5 + 1e-3);
}

TEST_F(FlowModelTest, SameRouterDemandTouchesOnlyEndpoints) {
  const std::vector<Demand> demands = {{7, 7, 5e8}};
  RateLoads out;
  out.resize(topo_);
  model_.route_background(demands, RoutingPolicy::Minimal, 1.0, rng_, out);
  for (double v : out.link_rate) EXPECT_DOUBLE_EQ(v, 0.0);
  EXPECT_DOUBLE_EQ(out.inject_rate[7], 5e8);
  EXPECT_DOUBLE_EQ(out.eject_rate[7], 5e8);
}

TEST_F(FlowModelTest, TransferRatesRespectCapacity) {
  // Many flows from one router: the endpoint (16 GB/s) is the bottleneck.
  std::vector<Demand> demands;
  for (int i = 1; i <= 8; ++i) demands.push_back({0, RouterId(i), 100e6});
  const TransferResult res = model_.transfer(demands, RoutingPolicy::Ugal, bg_, rng_);
  double total_rate = 0.0;
  for (const auto& m : res.messages) {
    EXPECT_GT(m.rate, 0.0);
    total_rate += m.rate;
  }
  // All flows share router 0's injection: aggregate within endpoint bw.
  EXPECT_LE(total_rate, topo_.config().endpoint_bw * 1.01);
}

TEST_F(FlowModelTest, MakespanIsMaxMessageTime) {
  const std::vector<Demand> demands = {{0, 10, 1e6}, {1, 11, 64e6}};
  const TransferResult res = model_.transfer(demands, RoutingPolicy::Ugal, bg_, rng_);
  double mx = 0.0;
  for (const auto& m : res.messages) mx = std::max(mx, m.time);
  EXPECT_DOUBLE_EQ(res.makespan, mx);
  EXPECT_GT(res.messages[1].time, res.messages[0].time);
}

TEST_F(FlowModelTest, BackgroundLoadSlowsTransfers) {
  const std::vector<Demand> demands = {{0, topo_.router_at(2, 1, 1), 64e6}};
  const double idle_time =
      model_.transfer(demands, RoutingPolicy::Minimal, bg_, rng_).makespan;

  // Saturate everything.
  RateLoads heavy;
  heavy.resize(topo_);
  for (int e = 0; e < topo_.num_links(); ++e)
    heavy.link_rate[std::size_t(e)] = topo_.link(LinkId(e)).capacity * 0.9;
  const double busy_time =
      model_.transfer(demands, RoutingPolicy::Minimal, heavy, rng_).makespan;
  EXPECT_GT(busy_time, idle_time * 2.0);
}

TEST_F(FlowModelTest, ByteAccountingMatchesDemands) {
  const std::vector<Demand> demands = {{0, 10, 32e6}, {3, 17, 8e6}};
  ByteLoads ours;
  ours.resize(topo_);
  (void)model_.transfer(demands, RoutingPolicy::Ugal, bg_, rng_, &ours);
  EXPECT_DOUBLE_EQ(ours.inject_bytes[0], 32e6);
  EXPECT_DOUBLE_EQ(ours.inject_bytes[3], 8e6);
  EXPECT_DOUBLE_EQ(ours.eject_bytes[10], 32e6);
  EXPECT_DOUBLE_EQ(ours.eject_bytes[17], 8e6);
  double total_link_bytes = 0.0;
  for (double v : ours.link_bytes) total_link_bytes += v;
  EXPECT_GE(total_link_bytes, 40e6);  // at least one hop each
}

TEST_F(FlowModelTest, EmptyTransferIsWellDefined) {
  const TransferResult res = model_.transfer({}, RoutingPolicy::Ugal, bg_, rng_);
  EXPECT_EQ(res.messages.size(), 0u);
  EXPECT_DOUBLE_EQ(res.makespan, 0.0);
}

TEST_F(FlowModelTest, ZeroByteMessagesAreIgnored) {
  const std::vector<Demand> demands = {{0, 10, 0.0}};
  const TransferResult res = model_.transfer(demands, RoutingPolicy::Ugal, bg_, rng_);
  EXPECT_DOUBLE_EQ(res.messages[0].time, 0.0);
}

TEST_F(FlowModelTest, CongestionFactorBaselineAndMonotonicity) {
  std::vector<RouterId> routers = {0, 1, 2, 3};
  EXPECT_DOUBLE_EQ(model_.congestion_factor(routers, bg_), 1.0);

  RateLoads mild, heavy;
  mild.resize(topo_);
  heavy.resize(topo_);
  for (int e = 0; e < topo_.num_links(); ++e) {
    mild.link_rate[std::size_t(e)] = topo_.link(LinkId(e)).capacity * 0.3;
    heavy.link_rate[std::size_t(e)] = topo_.link(LinkId(e)).capacity * 0.9;
  }
  const double f_mild = model_.congestion_factor(routers, mild);
  const double f_heavy = model_.congestion_factor(routers, heavy);
  EXPECT_GT(f_mild, 1.0);
  EXPECT_GT(f_heavy, f_mild);
}

TEST_F(FlowModelTest, FairnessBetweenIdenticalFlows) {
  // Two identical flows sharing one bottleneck get (nearly) equal rates.
  const RouterId dst = topo_.router_at(1, 0, 0);
  const std::vector<Demand> demands = {{0, dst, 50e6}, {0, dst, 50e6}};
  const TransferResult res = model_.transfer(demands, RoutingPolicy::Minimal, bg_, rng_);
  const double r0 = res.messages[0].rate, r1 = res.messages[1].rate;
  EXPECT_NEAR(r0 / r1, 1.0, 0.75);  // chunk paths differ, rates same order
}

TEST_F(FlowModelTest, ParamValidation) {
  FlowModelParams bad;
  bad.capacity_headroom = 0.0;
  EXPECT_THROW(FlowModel(topo_, bad), ContractError);
  FlowModelParams bad2;
  bad2.max_chunks = 0;
  EXPECT_THROW(FlowModel(topo_, bad2), ContractError);
}

}  // namespace
}  // namespace dfv::net
