// dfv::api session layer: every request type handled, results
// bit-identical to calling the analysis layer directly, contract
// violations surfaced as structured ErrorResponses, and a canonical
// wire codec (round-trips exactly; version skew and truncation are
// structured errors, never crashes).
#include "api/session.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/deviation.hpp"
#include "analysis/forecast.hpp"
#include "analysis/neighborhood.hpp"
#include "api/wire.hpp"
#include "common/log.hpp"
#include "ml/compiled.hpp"

namespace dfv::api {
namespace {

/// Pin the compiled-inference toggle for a scope, restoring on exit.
class CompiledToggleGuard {
 public:
  explicit CompiledToggleGuard(bool on) : prev_(ml::compiled_enabled()) {
    ml::set_compiled_enabled(on);
  }
  ~CompiledToggleGuard() { ml::set_compiled_enabled(prev_); }
  CompiledToggleGuard(const CompiledToggleGuard&) = delete;
  CompiledToggleGuard& operator=(const CompiledToggleGuard&) = delete;

 private:
  bool prev_;
};

SessionOptions small_options() {
  SessionOptions opt;
  sim::CampaignConfig cfg = sim::CampaignConfig::small(2026);
  cfg.days = 8;
  cfg.datasets = {{"MILC", 128}, {"UMT", 128}};
  opt.config = cfg;
  return opt;
}

class ApiSession : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    set_log_level(LogLevel::Warn);
    session_ = new Session(small_options());
    (void)session_->campaign();  // generate once for all tests
  }
  static void TearDownTestSuite() {
    delete session_;
    session_ = nullptr;
  }
  static Session* session_;
};

Session* ApiSession::session_ = nullptr;

TEST_F(ApiSession, CampaignSummaryMatchesDatasets) {
  const auto resp =
      std::get<CampaignSummaryResponse>(session_->handle(CampaignSummaryRequest{}));
  EXPECT_FALSE(resp.faulted);
  ASSERT_EQ(resp.rows.size(), 2u);
  EXPECT_EQ(resp.rows[0].label, "MILC-128");
  EXPECT_EQ(resp.rows[0].runs, session_->campaign().dataset("MILC", 128).num_runs());
}

TEST_F(ApiSession, RunLookupMatchesDataset) {
  const auto resp = std::get<RunLookupResponse>(
      session_->handle(RunLookupRequest{}.app("MILC").nodes(128).run(3)));
  const sim::RunRecord& run = session_->campaign().dataset("MILC", 128).runs[3];
  EXPECT_EQ(resp.job_id, run.job_id);
  EXPECT_EQ(resp.total_time_s, run.total_time_s());  // bitwise
  EXPECT_EQ(resp.steps, std::uint32_t(run.steps()));
}

TEST_F(ApiSession, NeighborhoodBitIdenticalToDirectCall) {
  const auto resp = std::get<NeighborhoodResponse>(
      session_->handle(NeighborhoodRequest{}.app("MILC").nodes(128).threshold(1.0)));
  const auto direct =
      analysis::analyze_neighborhood(session_->campaign().dataset("MILC", 128), 1.0);
  ASSERT_EQ(resp.result.ranked.size(), direct.ranked.size());
  EXPECT_EQ(resp.result.optimal_fraction, direct.optimal_fraction);
  for (std::size_t i = 0; i < direct.ranked.size(); ++i) {
    EXPECT_EQ(resp.result.ranked[i].user_id, direct.ranked[i].user_id);
    EXPECT_EQ(resp.result.ranked[i].mi, direct.ranked[i].mi);  // bitwise
  }
}

TEST_F(ApiSession, DeviationBitIdenticalToDirectCallAndCached) {
  const auto req = DeviationRequest{}.app("MILC").nodes(128);
  const auto resp = std::get<DeviationResponse>(session_->handle(req));
  const auto direct =
      analysis::analyze_deviation(session_->campaign().dataset("MILC", 128));
  EXPECT_EQ(resp.result.cv_mape, direct.cv_mape);  // bitwise
  EXPECT_EQ(resp.result.survival, direct.survival);
  // Second call is answered from the session cache — and stays identical.
  const auto again = std::get<DeviationResponse>(session_->handle(req));
  EXPECT_EQ(encode_response(Response{again}), encode_response(Response{resp}));
}

TEST_F(ApiSession, ForecastEvalBitIdenticalToDirectCall) {
  const analysis::WindowConfig wcfg{3, 5, analysis::FeatureSet::App};
  const auto resp = std::get<ForecastEvalResponse>(
      session_->handle(ForecastEvalRequest{}.app("MILC").nodes(128).m(3).k(5)));
  const auto direct =
      analysis::evaluate_forecast(session_->campaign().dataset("MILC", 128), wcfg, {});
  EXPECT_EQ(resp.eval.mape_attention, direct.mape_attention);  // bitwise
  EXPECT_EQ(resp.eval.mape_persistence, direct.mape_persistence);
  EXPECT_EQ(resp.eval.windows, direct.windows);
}

TEST_F(ApiSession, PointForecastPersistenceMatchesWindowCache) {
  const auto req = ForecastRequest{}.app("MILC").nodes(128).run(0).center(10).m(3).k(5);
  const auto resp = std::get<ForecastResponse>(session_->handle(req));
  // Persistence must equal the window-cache formula bitwise: sum the m
  // preceding step times in reverse order, scale by k/m.
  const sim::RunRecord& run = session_->campaign().dataset("MILC", 128).runs[0];
  double recent = 0.0;
  for (int j = 0; j < 3; ++j) recent += run.step_times[std::size_t(10 - 1 - j)];
  EXPECT_EQ(resp.persistence, recent / 3.0 * 5.0);
  EXPECT_GT(resp.predicted, 0.0);
  EXPECT_GT(resp.model_windows, 0u);
  // Same request again hits the resident model and answers identically.
  const auto again = std::get<ForecastResponse>(session_->handle(req));
  EXPECT_EQ(again.predicted, resp.predicted);
}

TEST_F(ApiSession, TopologyAndSimulateAreStateless) {
  const auto topo =
      std::get<TopologyResponse>(session_->handle(TopologyRequest{}.group_count(4)));
  EXPECT_NE(topo.description.find("groups"), std::string::npos);
  const auto sim = std::get<SimulateResponse>(session_->handle(
      SimulateRequest{}.group_count(4).offered_load(0.2).packet_count(60)));
  ASSERT_EQ(sim.engines.size(), 2u);
  EXPECT_EQ(sim.engines[0].name, "source-routed");
  EXPECT_EQ(sim.engines[1].name, "credit/VC");
}

TEST_F(ApiSession, ContractViolationBecomesErrorResponse) {
  const auto resp =
      session_->handle(RunLookupRequest{}.app("MILC").nodes(128).run(1000000));
  const auto* err = std::get_if<ErrorResponse>(&resp);
  ASSERT_NE(err, nullptr);
  EXPECT_EQ(err->code, ErrorCode::Contract);
  EXPECT_NE(err->message.find("out of range"), std::string::npos);
  // And rethrow() reconstructs the exact exception type and wording.
  EXPECT_THROW(rethrow(*err), ContractError);
}

TEST_F(ApiSession, UnknownDatasetIsAContractError) {
  const auto resp = session_->handle(DeviationRequest{}.app("NOSUCH").nodes(9));
  const auto* err = std::get_if<ErrorResponse>(&resp);
  ASSERT_NE(err, nullptr);
  EXPECT_EQ(err->code, ErrorCode::Contract);
}

TEST_F(ApiSession, TwoSessionsAnswerByteIdentically) {
  Session other(small_options());
  const Request reqs[] = {
      Request{RunLookupRequest{}.app("UMT").nodes(128).run(1)},
      Request{NeighborhoodRequest{}.app("MILC").nodes(128)},
      Request{ForecastRequest{}.app("MILC").nodes(128).run(2).center(12).m(3).k(5)},
  };
  for (const Request& req : reqs)
    EXPECT_EQ(encode_response(other.handle(req)), encode_response(session_->handle(req)));
}

TEST_F(ApiSession, CompiledInferenceToggleIsByteInvisible) {
  // Golden A/B for the compiled fast path (ml/compiled.hpp): a session
  // answering with the reference predict routes (toggle off) must
  // produce byte-identical responses to one answering with the compiled
  // path, across every request type whose handler runs model inference
  // (point forecast -> CompiledAttention; eval + deviation -> GBR
  // predict_rows inside RFE/CV).
  const Request reqs[] = {
      Request{ForecastRequest{}.app("MILC").nodes(128).run(2).center(12).m(3).k(5)},
      Request{ForecastRequest{}.app("UMT").nodes(128).run(0).center(14).m(5).k(9)},
      Request{ForecastEvalRequest{}.app("UMT").nodes(128).m(3).k(5)},
      Request{DeviationRequest{}.app("MILC").nodes(128)},
  };
  std::vector<std::string> want;
  {
    CompiledToggleGuard off(false);
    Session reference(small_options());
    for (const Request& req : reqs)
      want.push_back(encode_response(reference.handle(req)));
  }
  CompiledToggleGuard on(true);
  for (std::size_t i = 0; i < std::size(reqs); ++i)
    EXPECT_EQ(encode_response(session_->handle(reqs[i])), want[i]) << "request " << i;
}

// ---------------------------------------------------------------------------
// Wire codec.
// ---------------------------------------------------------------------------

TEST(ApiWire, RequestRoundTripsEveryType) {
  const std::vector<Request> reqs = {
      Request{CampaignSummaryRequest{}},
      Request{ExportRequest{}.out_dir("/tmp/x")},
      Request{RunLookupRequest{}.app("UMT").nodes(256).run(7)},
      Request{NeighborhoodRequest{}.app("MILC").nodes(128).threshold(1.25)},
      Request{DeviationRequest{}.app("HACC").nodes(64)},
      Request{ForecastRequest{}.app("MILC").nodes(128).run(3).center(17).m(5).k(9).features(
          analysis::FeatureSet::AppPlacementIoSys)},
      Request{ForecastEvalRequest{}.app("MILC").nodes(128).m(10).k(20)},
      Request{ForecastGridRequest{}.app("MILC").nodes(128).cell(
          {3, 5, analysis::FeatureSet::App})},
      Request{TopologyRequest{}.group_count(6)},
      Request{SimulateRequest{}.group_count(4).traffic("hotspot").routing("minimal")},
  };
  for (const Request& req : reqs) {
    const std::string bytes = encode_request(req);
    const Request back = decode_request(bytes);
    EXPECT_EQ(back.index(), req.index());
    // Canonical encoding: re-encoding the decoded value is a fixpoint.
    EXPECT_EQ(encode_request(back), bytes);
  }
}

TEST(ApiWire, ResponseRoundTripsWithBitExactDoubles) {
  ForecastResponse fr;
  fr.predicted = 0.1 + 0.2;  // a value with a non-trivial mantissa
  fr.persistence = 1.0 / 3.0;
  fr.model_windows = 41;
  const std::string bytes = encode_response(Response{fr});
  const auto back = std::get<ForecastResponse>(decode_response(bytes));
  EXPECT_EQ(back.predicted, fr.predicted);  // bitwise through the wire
  EXPECT_EQ(back.persistence, fr.persistence);
  EXPECT_EQ(encode_response(Response{back}), bytes);
}

TEST(ApiWire, UnknownVersionIsAStructuredErrorNotACrash) {
  std::string bytes = encode_request(Request{RunLookupRequest{}});
  bytes[0] = char(0x2a);  // forge envelope version 42
  EXPECT_THROW((void)decode_request(bytes), VersionError);
  try {
    (void)decode_request(bytes);
  } catch (const VersionError& e) {
    EXPECT_EQ(e.found, 42u);
  }
  // Through the server entry point it becomes ErrorResponse{VersionMismatch}.
  Session session(small_options());
  const auto resp = decode_response(handle_encoded(session, bytes));
  const auto* err = std::get_if<ErrorResponse>(&resp);
  ASSERT_NE(err, nullptr);
  EXPECT_EQ(err->code, ErrorCode::VersionMismatch);
}

TEST(ApiWire, TruncatedAndTrailingBytesAreBadRequests) {
  Session session(small_options());
  const std::string bytes = encode_request(Request{DeviationRequest{}});
  // The last entry is a well-formed v2 envelope ([version][request_id]
  // [deadline_ms]) that carries an unknown tag 0x63.
  for (const std::string& bad :
       {bytes.substr(0, 3), bytes.substr(0, bytes.size() - 1), bytes + "x",
        std::string("\x02\x00\x00\x00", 4) + std::string(12, '\0') + '\x63'}) {
    const auto resp = decode_response(handle_encoded(session, bad));
    const auto* err = std::get_if<ErrorResponse>(&resp);
    ASSERT_NE(err, nullptr);
    EXPECT_EQ(err->code, ErrorCode::BadRequest);
  }
}

TEST(ApiWire, HandleEncodedAnswersStatelessRequests) {
  Session session(small_options());
  const auto resp = decode_response(
      handle_encoded(session, encode_request(Request{TopologyRequest{}.group_count(4)})));
  const auto* topo = std::get_if<TopologyResponse>(&resp);
  ASSERT_NE(topo, nullptr);
  EXPECT_FALSE(topo->description.empty());
}

TEST(ApiWire, ParseFeatureSetAcceptsAllNamesRejectsUnknown) {
  EXPECT_EQ(parse_feature_set("app"), analysis::FeatureSet::App);
  EXPECT_EQ(parse_feature_set("app+placement+io+sys"),
            analysis::FeatureSet::AppPlacementIoSys);
  EXPECT_THROW((void)parse_feature_set("bogus"), ContractError);
}

}  // namespace
}  // namespace dfv::api
