#include "net/vc_sim.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace dfv::net {
namespace {

VcSimParams params_with(RoutingPolicy p) {
  VcSimParams ps;
  ps.policy = p;
  return ps;
}

TEST(VcSim, DeliversEveryPacketWithoutDeadlock) {
  const Topology topo(DragonflyConfig::small(4));
  VcPacketSim sim(topo, params_with(RoutingPolicy::Ugal), 1);
  const VcStats stats = sim.run_synthetic(TrafficPattern::Uniform, 0.2, 40);
  EXPECT_EQ(stats.injected, stats.delivered);
  EXPECT_FALSE(stats.deadlocked);
  EXPECT_GT(stats.delivered, 0u);
}

TEST(VcSim, SinglePacketTakesMinimalRoute) {
  const Topology topo(DragonflyConfig::small(4));
  VcPacketSim sim(topo, params_with(RoutingPolicy::Minimal), 2);
  sim.inject(0.0, 0, topo.router_at(2, 1, 2));
  const VcStats stats = sim.run();
  EXPECT_EQ(stats.delivered, 1u);
  EXPECT_LE(stats.mean_hops, 5.0);
  EXPECT_GE(stats.mean_latency, topo.config().global_latency);
}

TEST(VcSim, IntraGroupPacketsStayLocal) {
  const Topology topo(DragonflyConfig::small(4));
  VcPacketSim sim(topo, params_with(RoutingPolicy::Ugal), 3);
  sim.inject(0.0, topo.router_at(1, 0, 0), topo.router_at(1, 2, 3));
  const VcStats stats = sim.run();
  EXPECT_EQ(stats.delivered, 1u);
  EXPECT_LE(stats.mean_hops, 2.0);
}

TEST(VcSim, CreditStallsAppearUnderCongestion) {
  const Topology topo(DragonflyConfig::small(4));
  VcSimParams ps = params_with(RoutingPolicy::Minimal);
  ps.buffer_flits = 8;  // shallow buffers back-pressure quickly
  VcPacketSim sim(topo, ps, 4);
  const VcStats stats = sim.run_synthetic(TrafficPattern::Hotspot, 0.8, 150);
  EXPECT_FALSE(stats.deadlocked);
  EXPECT_GT(stats.total_stall_cycles(), 0.0);
}

TEST(VcSim, ResponseFractionSplitsStallClasses) {
  const Topology topo(DragonflyConfig::small(4));
  VcSimParams ps = params_with(RoutingPolicy::Minimal);
  ps.buffer_flits = 8;
  ps.response_fraction = 0.5;
  VcPacketSim sim(topo, ps, 5);
  const VcStats stats = sim.run_synthetic(TrafficPattern::Hotspot, 0.8, 150);
  double rq = 0.0, rs = 0.0;
  for (double v : stats.stall_cycles_rq) rq += v;
  for (double v : stats.stall_cycles_rs) rs += v;
  EXPECT_GT(rq, 0.0);
  EXPECT_GT(rs, 0.0);
}

TEST(VcSim, DeeperBuffersReduceStalls) {
  const Topology topo(DragonflyConfig::small(4));
  VcSimParams shallow = params_with(RoutingPolicy::Minimal);
  shallow.buffer_flits = 8;
  VcSimParams deep = params_with(RoutingPolicy::Minimal);
  deep.buffer_flits = 128;
  VcPacketSim a(topo, shallow, 6), b(topo, deep, 6);
  const VcStats sa = a.run_synthetic(TrafficPattern::Uniform, 0.6, 120);
  const VcStats sb = b.run_synthetic(TrafficPattern::Uniform, 0.6, 120);
  EXPECT_GE(sa.total_stall_cycles(), sb.total_stall_cycles());
}

TEST(VcSim, AdversarialTrafficFavorsNonMinimalPolicies) {
  DragonflyConfig cfg = DragonflyConfig::small(9);
  cfg.global_ports_per_router = 1;  // tapered: direct bundles saturate
  const Topology topo(cfg);
  VcPacketSim minimal(topo, params_with(RoutingPolicy::Minimal), 7);
  VcPacketSim ugal(topo, params_with(RoutingPolicy::Ugal), 7);
  const VcStats m = minimal.run_synthetic(TrafficPattern::AdversarialShift, 0.3, 400);
  const VcStats u = ugal.run_synthetic(TrafficPattern::AdversarialShift, 0.3, 400);
  EXPECT_FALSE(m.deadlocked);
  EXPECT_FALSE(u.deadlocked);
  EXPECT_LT(u.mean_latency, m.mean_latency);
}

TEST(VcSim, ValiantRaisesHopCount) {
  const Topology topo(DragonflyConfig::small(4));
  VcPacketSim minimal(topo, params_with(RoutingPolicy::Minimal), 8);
  VcPacketSim valiant(topo, params_with(RoutingPolicy::Valiant), 8);
  const VcStats m = minimal.run_synthetic(TrafficPattern::Uniform, 0.1, 40);
  const VcStats v = valiant.run_synthetic(TrafficPattern::Uniform, 0.1, 40);
  EXPECT_GT(v.mean_hops, m.mean_hops);
}

TEST(VcSim, RejectsBuffersSmallerThanPacket) {
  const Topology topo(DragonflyConfig::small(4));
  VcSimParams bad;
  bad.buffer_flits = 2;
  bad.packet_flits = 4;
  EXPECT_THROW(VcPacketSim(topo, bad, 1), ContractError);
}

TEST(VcSim, DeterministicGivenSeed) {
  const Topology topo(DragonflyConfig::small(4));
  VcPacketSim a(topo, params_with(RoutingPolicy::Ugal), 42);
  VcPacketSim b(topo, params_with(RoutingPolicy::Ugal), 42);
  const VcStats sa = a.run_synthetic(TrafficPattern::Uniform, 0.3, 50);
  const VcStats sb = b.run_synthetic(TrafficPattern::Uniform, 0.3, 50);
  EXPECT_DOUBLE_EQ(sa.mean_latency, sb.mean_latency);
  EXPECT_EQ(sa.delivered, sb.delivered);
}

}  // namespace
}  // namespace dfv::net
