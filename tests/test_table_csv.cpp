#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"

namespace dfv {
namespace {

TEST(Table, RendersHeadersAndRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"bb", "22"});
  const std::string s = t.str();
  EXPECT_NE(s.find("| name  | value |"), std::string::npos);
  EXPECT_NE(s.find("| alpha |     1 |"), std::string::npos);
  EXPECT_NE(s.find("| bb    |    22 |"), std::string::npos);
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractError);
}

TEST(Table, AlignmentConfigurable) {
  Table t({"x"});
  t.set_align(0, Align::Right);
  t.add_row({"7"});
  EXPECT_NE(t.str().find("| 7 |"), std::string::npos);
}

TEST(Format, Double) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(-1.0, 0), "-1");
}

TEST(Format, Sci) { EXPECT_EQ(format_sci(12345.0, 2), "1.23e+04"); }

TEST(Format, Bytes) {
  EXPECT_EQ(format_bytes(512), "512.0 B");
  EXPECT_EQ(format_bytes(2048), "2.00 KiB");
  EXPECT_EQ(format_bytes(3.5 * 1024 * 1024), "3.50 MiB");
}

TEST(Csv, RoundTripSimple) {
  Csv c;
  c.header = {"a", "b"};
  c.rows = {{"1", "2"}, {"3", "4"}};
  const Csv parsed = parse_csv(c.str());
  EXPECT_EQ(parsed.header, c.header);
  EXPECT_EQ(parsed.rows, c.rows);
}

TEST(Csv, QuotingEmbeddedCommasAndQuotes) {
  Csv c;
  c.header = {"text", "n"};
  c.rows = {{"hello, world", "1"}, {"say \"hi\"", "2"}, {"multi\nline", "3"}};
  const Csv parsed = parse_csv(c.str());
  EXPECT_EQ(parsed.rows, c.rows);
}

TEST(Csv, ColumnLookup) {
  Csv c;
  c.header = {"x", "y", "z"};
  EXPECT_EQ(c.col("y"), 1u);
  EXPECT_THROW((void)c.col("missing"), ContractError);
}

TEST(Csv, ParseHandlesCrLf) {
  const Csv parsed = parse_csv("a,b\r\n1,2\r\n");
  ASSERT_EQ(parsed.rows.size(), 1u);
  EXPECT_EQ(parsed.rows[0][1], "2");
}

TEST(Csv, EmptyCellsPreserved) {
  const Csv parsed = parse_csv("a,b,c\n1,,3\n");
  ASSERT_EQ(parsed.rows.size(), 1u);
  EXPECT_EQ(parsed.rows[0][1], "");
}

TEST(Csv, FileRoundTrip) {
  Csv c;
  c.header = {"k", "v"};
  c.rows = {{"key", "value"}};
  const std::string path = testing::TempDir() + "/dfv_csv_test.csv";
  ASSERT_TRUE(write_csv(c, path));
  const Csv back = read_csv(path);
  EXPECT_EQ(back.rows, c.rows);
  EXPECT_THROW((void)read_csv("/nonexistent/never.csv"), ContractError);
}

}  // namespace
}  // namespace dfv
