#include "analysis/neighborhood.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

#include <algorithm>

#include "synthetic.hpp"

namespace dfv::analysis {
namespace {

TEST(Neighborhood, RecoversPlantedAggressor) {
  testutil::SyntheticSpec spec;
  spec.runs = 120;
  spec.aggressor_effect = 2.5;
  const sim::Dataset ds = testutil::make_planted_dataset(spec);
  const NeighborhoodResult res = analyze_neighborhood(ds);

  ASSERT_FALSE(res.ranked.empty());
  EXPECT_EQ(res.ranked.front().user_id, spec.aggressor_user);
  EXPECT_TRUE(res.ranked.front().negatively_correlated());
  EXPECT_GT(res.ranked.front().mi, 0.05);
}

TEST(Neighborhood, BystandersScoreLow) {
  testutil::SyntheticSpec spec;
  spec.runs = 150;
  const sim::Dataset ds = testutil::make_planted_dataset(spec);
  const NeighborhoodResult res = analyze_neighborhood(ds);
  double aggressor_mi = 0.0, max_bystander_mi = 0.0;
  for (const auto& s : res.ranked) {
    if (s.user_id == spec.aggressor_user)
      aggressor_mi = s.mi;
    else
      max_bystander_mi = std::max(max_bystander_mi, s.mi);
  }
  EXPECT_GT(aggressor_mi, 2.0 * max_bystander_mi);
}

TEST(Neighborhood, BlamedUsersFiltersDirectionAndCount) {
  testutil::SyntheticSpec spec;
  spec.runs = 120;
  const sim::Dataset ds = testutil::make_planted_dataset(spec);
  const NeighborhoodResult res = analyze_neighborhood(ds);
  const auto blamed = blamed_users(res, /*top_k=*/3, /*min_mi=*/1e-3);
  EXPECT_LE(blamed.size(), 3u);
  EXPECT_NE(std::find(blamed.begin(), blamed.end(), spec.aggressor_user), blamed.end());
  EXPECT_TRUE(std::is_sorted(blamed.begin(), blamed.end()));
}

TEST(Neighborhood, OptimalityThresholdTau) {
  testutil::SyntheticSpec spec;
  spec.runs = 80;
  const sim::Dataset ds = testutil::make_planted_dataset(spec);
  const NeighborhoodResult strict = analyze_neighborhood(ds, 0.8);
  const NeighborhoodResult loose = analyze_neighborhood(ds, 1.3);
  EXPECT_LT(strict.optimal_fraction, loose.optimal_fraction);
}

TEST(Neighborhood, StatsAreConsistent) {
  testutil::SyntheticSpec spec;
  spec.runs = 60;
  const sim::Dataset ds = testutil::make_planted_dataset(spec);
  const NeighborhoodResult res = analyze_neighborhood(ds);
  EXPECT_GT(res.mean_total_time, 0.0);
  EXPECT_GT(res.optimal_fraction, 0.0);
  EXPECT_LT(res.optimal_fraction, 1.0);
  for (const auto& s : res.ranked) {
    EXPECT_GE(s.mi, 0.0);
    EXPECT_GE(s.presence, 0.0);
    EXPECT_LE(s.presence, 1.0);
  }
  // Ranked by MI descending.
  for (std::size_t i = 1; i < res.ranked.size(); ++i)
    EXPECT_GE(res.ranked[i - 1].mi, res.ranked[i].mi);
}

TEST(Neighborhood, RequiresRuns) {
  sim::Dataset empty;
  EXPECT_THROW((void)analyze_neighborhood(empty), ContractError);
}

}  // namespace
}  // namespace dfv::analysis
