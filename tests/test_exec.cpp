#include "exec/exec.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/check.hpp"

namespace dfv::exec {
namespace {

class ExecTest : public ::testing::Test {
 protected:
  void SetUp() override { ThreadPool::instance().resize(4); }
  void TearDown() override { ThreadPool::instance().resize(4); }
};

TEST_F(ExecTest, ResolveThreadsPrecedence) {
  EXPECT_EQ(resolve_threads(3), 3);  // flag wins over everything
  EXPECT_GE(resolve_threads(0), 1);  // env/hardware fallback is sane
}

TEST_F(ExecTest, PoolLifecycleResize) {
  auto& pool = ThreadPool::instance();
  for (int n : {1, 2, 8, 1, 4}) {
    pool.resize(n);
    EXPECT_EQ(pool.size(), n);
    std::atomic<int> count{0};
    parallel_for(0, 1000, 16, [&](std::size_t lo, std::size_t hi) {
      count.fetch_add(int(hi - lo), std::memory_order_relaxed);
    });
    EXPECT_EQ(count.load(), 1000);
  }
}

TEST_F(ExecTest, ParallelForCoversEveryIndexOnce) {
  std::vector<std::atomic<int>> hits(1237);
  parallel_for(0, hits.size(), 7, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST_F(ExecTest, ExceptionPropagatesOutOfParallelFor) {
  EXPECT_THROW(
      parallel_for(0, 256, 1,
                   [&](std::size_t lo, std::size_t) {
                     if (lo == 100) throw std::runtime_error("chunk failed");
                   }),
      std::runtime_error);
  // The pool must remain usable after a failed region.
  std::atomic<int> count{0};
  parallel_for(0, 64, 4, [&](std::size_t lo, std::size_t hi) {
    count.fetch_add(int(hi - lo));
  });
  EXPECT_EQ(count.load(), 64);
}

TEST_F(ExecTest, NestedCallsRunInline) {
  std::atomic<int> total{0};
  parallel_for(0, 8, 1, [&](std::size_t, std::size_t) {
    EXPECT_TRUE(ThreadPool::in_parallel_region());
    // Nested region: must execute inline without deadlocking.
    parallel_for(0, 10, 2, [&](std::size_t lo, std::size_t hi) {
      total.fetch_add(int(hi - lo), std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 80);
  EXPECT_FALSE(ThreadPool::in_parallel_region());
}

TEST_F(ExecTest, GrainOneVsGrainNEquivalence) {
  // A chunked reduction must give bit-identical results for any thread
  // count at fixed grain; and the grain=1 decomposition equals a serial
  // left fold.
  std::vector<double> vals(5000);
  Rng rng(42);
  for (double& v : vals) v = rng.uniform(-1.0, 1.0);

  auto sum_with = [&](std::size_t grain) {
    return parallel_reduce(
        0, vals.size(), grain, 0.0,
        [&](std::size_t lo, std::size_t hi) {
          double s = 0.0;
          for (std::size_t i = lo; i < hi; ++i) s += vals[i];
          return s;
        },
        [](double a, double b) { return a + b; });
  };

  double serial = 0.0;
  for (double v : vals) serial += v;
  EXPECT_DOUBLE_EQ(sum_with(1), serial);  // grain=1: identical fold order

  const double g64 = sum_with(64);
  for (int threads : {1, 2, 8}) {
    ThreadPool::instance().resize(threads);
    EXPECT_DOUBLE_EQ(sum_with(64), g64) << "threads=" << threads;
    EXPECT_DOUBLE_EQ(sum_with(1), serial) << "threads=" << threads;
  }
}

TEST_F(ExecTest, ParallelMapFillsEverySlot) {
  const auto out = parallel_map<std::uint64_t>(
      777, 5, [](std::size_t i) { return substream_seed(1, i); });
  ASSERT_EQ(out.size(), 777u);
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_EQ(out[i], substream_seed(1, i)) << i;
}

TEST_F(ExecTest, SubstreamSeedsDecorrelated) {
  // Substream seeds must differ from each other and from the parent.
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 100; ++i) seeds.push_back(substream_seed(7, i));
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::unique(seeds.begin(), seeds.end()), seeds.end());
}

TEST_F(ExecTest, ManySmallRegionsStress) {
  // Back-to-back small regions exercise the spin/wake path and stale
  // worker claims across generations.
  std::uint64_t acc = 0;
  for (int rep = 0; rep < 2000; ++rep) {
    acc += parallel_reduce(
        0, 64, 8, std::uint64_t{0},
        [&](std::size_t lo, std::size_t hi) { return std::uint64_t(hi - lo); },
        [](std::uint64_t a, std::uint64_t b) { return a + b; });
  }
  EXPECT_EQ(acc, 2000u * 64u);
}

TEST_F(ExecTest, ResizeInsideRegionRejected) {
  parallel_for(0, 4, 1, [&](std::size_t, std::size_t) {
    EXPECT_THROW(ThreadPool::instance().resize(2), ContractError);
  });
}

}  // namespace
}  // namespace dfv::exec
