#include "ml/tree.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"

#include "common/rng.hpp"
#include "ml/metrics.hpp"

namespace dfv::ml {
namespace {

std::vector<std::size_t> all_rows(std::size_t n) {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  return idx;
}

TEST(Tree, FitsStepFunctionExactly) {
  // y = 1 if x0 > 0.5 else 0: one split suffices.
  Rng rng(1);
  Matrix x(200, 1);
  std::vector<double> y(200);
  for (std::size_t i = 0; i < 200; ++i) {
    x(i, 0) = rng.uniform();
    y[i] = x(i, 0) > 0.5 ? 1.0 : 0.0;
  }
  RegressionTree tree;
  TreeParams params;
  params.max_depth = 2;
  params.min_samples_leaf = 5;
  tree.fit(x, y, all_rows(200), params);
  int correct = 0;
  for (std::size_t i = 0; i < 200; ++i)
    correct += std::abs(tree.predict_one(x.row(i)) - y[i]) < 0.2;
  EXPECT_GT(correct, 190);
}

TEST(Tree, SplitsOnInformativeFeatureOnly) {
  Rng rng(2);
  Matrix x(400, 3);
  std::vector<double> y(400);
  for (std::size_t i = 0; i < 400; ++i) {
    for (std::size_t c = 0; c < 3; ++c) x(i, c) = rng.normal();
    y[i] = 5.0 * x(i, 1);  // only feature 1 matters
  }
  RegressionTree tree;
  tree.fit(x, y, all_rows(400), TreeParams{});
  const auto& gains = tree.feature_gains();
  EXPECT_GT(gains[1], 10.0 * (gains[0] + gains[2] + 1e-12));
}

TEST(Tree, RespectsDepthLimit) {
  Rng rng(3);
  Matrix x(500, 1);
  std::vector<double> y(500);
  for (std::size_t i = 0; i < 500; ++i) {
    x(i, 0) = rng.uniform();
    y[i] = std::sin(10.0 * x(i, 0));
  }
  RegressionTree stump;
  TreeParams p1;
  p1.max_depth = 1;
  stump.fit(x, y, all_rows(500), p1);
  EXPECT_LE(stump.node_count(), 3u);  // root + 2 leaves

  RegressionTree deep;
  TreeParams p5;
  p5.max_depth = 5;
  p5.min_samples_leaf = 5;
  deep.fit(x, y, all_rows(500), p5);
  EXPECT_GT(deep.node_count(), stump.node_count());

  // Deeper fits better.
  std::vector<double> ps, pd;
  for (std::size_t i = 0; i < 500; ++i) {
    ps.push_back(stump.predict_one(x.row(i)));
    pd.push_back(deep.predict_one(x.row(i)));
  }
  EXPECT_LT(rmse(y, pd), rmse(y, ps));
}

TEST(Tree, ConstantTargetIsSingleLeaf) {
  Matrix x(50, 2);
  Rng rng(4);
  for (std::size_t i = 0; i < 50; ++i)
    for (std::size_t c = 0; c < 2; ++c) x(i, c) = rng.normal();
  const std::vector<double> y(50, 3.25);
  RegressionTree tree;
  tree.fit(x, y, all_rows(50), TreeParams{});
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_DOUBLE_EQ(tree.predict_one(x.row(0)), 3.25);
}

TEST(Tree, FitsOnRowSubsetOnly) {
  Matrix x(100, 1);
  std::vector<double> y(100);
  for (std::size_t i = 0; i < 100; ++i) {
    x(i, 0) = double(i);
    y[i] = i < 50 ? 0.0 : 100.0;
  }
  // Fit on the first half only: the tree never sees the step.
  std::vector<std::size_t> first_half = all_rows(50);
  RegressionTree tree;
  tree.fit(x, y, first_half, TreeParams{});
  EXPECT_NEAR(tree.predict_one(x.row(80)), 0.0, 1e-9);
}

TEST(Tree, MinSamplesLeafRespected) {
  Matrix x(30, 1);
  std::vector<double> y(30);
  Rng rng(5);
  for (std::size_t i = 0; i < 30; ++i) {
    x(i, 0) = rng.uniform();
    y[i] = x(i, 0);
  }
  RegressionTree tree;
  TreeParams p;
  p.min_samples_leaf = 30;  // cannot split at all
  tree.fit(x, y, all_rows(30), p);
  EXPECT_EQ(tree.node_count(), 1u);
}

TEST(Tree, BaselineFitMatchesMaterializedResidual) {
  // The baseline overload fits y[r] - baseline[r] without the caller
  // materializing the difference; it must reproduce the precomputed-
  // residual fit bit for bit (same subtraction, same accumulation
  // order). This is boosting's no-residual-array path.
  Rng rng(6);
  Matrix x(400, 3);
  std::vector<double> y(400), base(400), resid(400);
  for (std::size_t i = 0; i < 400; ++i) {
    for (std::size_t c = 0; c < 3; ++c) x(i, c) = rng.uniform(-1, 1);
    y[i] = std::sin(2.0 * x(i, 0)) + 0.3 * x(i, 1);
    base[i] = rng.normal() * 0.1;
    resid[i] = y[i] - base[i];
  }
  const BinnedDataset binned(x, TreeParams{}.histogram_bins);
  const std::vector<std::size_t> rows = all_rows(400);
  const FeatureMask mask = FeatureMask::all(3);
  RegressionTree with_baseline, precomputed;
  with_baseline.fit(binned, y, base, rows, mask, TreeParams{});
  precomputed.fit(binned, resid, rows, mask, TreeParams{});
  ASSERT_EQ(with_baseline.node_count(), precomputed.node_count());
  for (std::size_t i = 0; i < 400; ++i)
    EXPECT_EQ(with_baseline.predict_one(x.row(i)), precomputed.predict_one(x.row(i)));
  EXPECT_EQ(with_baseline.feature_gains(), precomputed.feature_gains());
}

TEST(Tree, ParamValidation) {
  Matrix x(10, 1);
  std::vector<double> y(10, 1.0);
  RegressionTree tree;
  TreeParams bad;
  bad.histogram_bins = 1;
  EXPECT_THROW(tree.fit(x, y, all_rows(10), bad), ContractError);
  EXPECT_THROW(tree.fit(x, y, {}, TreeParams{}), ContractError);
}

}  // namespace
}  // namespace dfv::ml
