#include "analysis/deviation.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "synthetic.hpp"

namespace dfv::analysis {
namespace {

DeviationConfig fast_config() {
  DeviationConfig cfg;
  cfg.rfe.folds = 4;
  cfg.rfe.gbr.n_trees = 30;
  return cfg;
}

TEST(Deviation, CenteredSamplesRemoveMeanTrend) {
  testutil::SyntheticSpec spec;
  spec.runs = 40;
  const sim::Dataset ds = testutil::make_planted_dataset(spec);
  const CenteredSamples cs = build_centered_samples(ds);

  EXPECT_EQ(cs.y.size(), std::size_t(spec.runs * spec.steps));
  EXPECT_EQ(cs.x.rows(), cs.y.size());
  EXPECT_EQ(cs.x.cols(), std::size_t(mon::kNumCounters));

  // Per-step mean of the centered target is ~0 for every step index.
  for (int t = 0; t < spec.steps; ++t) {
    double mean = 0.0;
    for (int r = 0; r < spec.runs; ++r) mean += cs.y[std::size_t(r * spec.steps + t)];
    EXPECT_NEAR(mean / spec.runs, 0.0, 1e-9) << "step " << t;
  }
  // The offset is the removed (non-constant) mean curve.
  const auto [mn, mx] =
      std::minmax_element(cs.mean_offset.begin(), cs.mean_offset.end());
  EXPECT_GT(*mx - *mn, 1.0);
  // run_of labels.
  EXPECT_EQ(cs.run_of[0], 0u);
  EXPECT_EQ(cs.run_of.back(), std::size_t(spec.runs - 1));
}

TEST(Deviation, IdentifiesPlantedDriverCounter) {
  testutil::SyntheticSpec spec;
  spec.runs = 80;
  spec.driver_counter = int(mon::Counter::RT_RB_STL);
  const sim::Dataset ds = testutil::make_planted_dataset(spec);
  const DeviationResult res = analyze_deviation(ds, fast_config());

  ASSERT_EQ(res.relevance.size(), std::size_t(mon::kNumCounters));
  // The driver is (nearly) always in the best-performing subset.
  EXPECT_GT(res.relevance[std::size_t(spec.driver_counter)], 0.7);
  // And survives elimination longer than any other counter.
  for (int c = 0; c < mon::kNumCounters; ++c) {
    if (c == spec.driver_counter) continue;
    EXPECT_GT(res.survival[std::size_t(spec.driver_counter)],
              res.survival[std::size_t(c)])
        << mon::counter_name(mon::counter_from_index(c));
  }
}

TEST(Deviation, DifferentDriverDifferentVerdict) {
  testutil::SyntheticSpec spec;
  spec.runs = 80;
  spec.driver_counter = int(mon::Counter::PT_FLIT_VC0);
  const sim::Dataset ds = testutil::make_planted_dataset(spec);
  const DeviationResult res = analyze_deviation(ds, fast_config());
  EXPECT_GT(res.relevance[std::size_t(spec.driver_counter)], 0.7);
  EXPECT_GT(res.survival[std::size_t(spec.driver_counter)],
            res.survival[std::size_t(int(mon::Counter::RT_RB_STL))]);
}

TEST(Deviation, MapeBelowFivePercentOnLearnableData) {
  // The paper reports < 5% MAPE for all datasets (§V-B); our synthetic
  // data is as learnable.
  testutil::SyntheticSpec spec;
  spec.runs = 80;
  const sim::Dataset ds = testutil::make_planted_dataset(spec);
  const DeviationResult res = analyze_deviation(ds, fast_config());
  EXPECT_LT(res.cv_mape, 5.0);
  EXPECT_GT(res.cv_mape, 0.0);
  EXPECT_EQ(res.samples, std::size_t(spec.runs * spec.steps));
}

}  // namespace
}  // namespace dfv::analysis
