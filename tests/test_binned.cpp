#include "ml/binned.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "exec/exec.hpp"
#include "ml/tree.hpp"

namespace dfv::ml {
namespace {

Matrix random_matrix(std::size_t n, std::size_t f, Rng& rng) {
  Matrix x(n, f);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t c = 0; c < f; ++c) x(i, c) = rng.normal();
  return x;
}

TEST(Binned, CodesMatchEdgeDefinition) {
  Rng rng(1);
  const Matrix x = random_matrix(300, 4, rng);
  const BinnedDataset b(x, 16);
  ASSERT_EQ(b.rows(), 300u);
  ASSERT_EQ(b.features(), 4u);
  for (std::size_t f = 0; f < 4; ++f) {
    const auto& edges = b.edges(f);
    EXPECT_TRUE(std::is_sorted(edges.begin(), edges.end()));
    EXPECT_LT(edges.size(), 16u);
    for (std::size_t r = 0; r < 300; ++r) {
      // code = number of edges strictly below the value (lower_bound).
      const auto it = std::lower_bound(edges.begin(), edges.end(), x(r, f));
      EXPECT_EQ(b.code(r, f), std::uint8_t(it - edges.begin()));
    }
  }
}

TEST(Binned, FeatureCodesSpanIsFeatureMajor) {
  Rng rng(2);
  const Matrix x = random_matrix(50, 3, rng);
  const BinnedDataset b(x, 8);
  for (std::size_t f = 0; f < 3; ++f) {
    const auto codes = b.feature_codes(f);
    ASSERT_EQ(codes.size(), 50u);
    for (std::size_t r = 0; r < 50; ++r) EXPECT_EQ(codes[r], b.code(r, f));
  }
}

TEST(Binned, ConstantFeatureCollapsesToOneBin) {
  Matrix x(40, 2);
  Rng rng(3);
  for (std::size_t i = 0; i < 40; ++i) {
    x(i, 0) = 7.5;
    x(i, 1) = rng.uniform();
  }
  const BinnedDataset b(x, 8);
  // A constant feature keeps at most one (degenerate) edge and every row
  // lands in bin 0, so no split on it can ever separate samples.
  EXPECT_LE(b.edges(0).size(), 1u);
  EXPECT_GT(b.edges(1).size(), 1u);
  for (std::size_t r = 0; r < 40; ++r) EXPECT_EQ(b.code(r, 0), 0);
}

TEST(Binned, BuildIsThreadCountInvariant) {
  Rng rng(4);
  const Matrix x = random_matrix(4000, 6, rng);
  exec::ThreadPool::instance().resize(1);
  const BinnedDataset serial(x, 24);
  exec::ThreadPool::instance().resize(8);
  const BinnedDataset parallel(x, 24);
  exec::ThreadPool::instance().resize(exec::resolve_threads());
  for (std::size_t f = 0; f < 6; ++f) EXPECT_EQ(serial.edges(f), parallel.edges(f));
  for (std::size_t f = 0; f < 6; ++f)
    for (std::size_t r = 0; r < 4000; ++r)
      ASSERT_EQ(serial.code(r, f), parallel.code(r, f));
}

TEST(FeatureMask, Helpers) {
  const FeatureMask all = FeatureMask::all(4);
  EXPECT_EQ(all.count(), 4u);
  const std::vector<std::size_t> keep = {0, 3};
  const FeatureMask some = FeatureMask::of(4, keep);
  EXPECT_EQ(some.count(), 2u);
  EXPECT_TRUE(some.test(0));
  EXPECT_FALSE(some.test(1));
  EXPECT_FALSE(some.test(2));
  EXPECT_TRUE(some.test(3));
}

TEST(Binned, MaskedTreeFitMatchesMaterializedSubmatrix) {
  // A tree fitted on (full binned view, feature mask) must produce
  // exactly the fit on the materialized column-subset matrix: the
  // surviving features' edges are identical (same rows bin them), so
  // splits, gains, and predictions agree bit-for-bit.
  Rng rng(5);
  const std::size_t n = 600;
  Matrix x = random_matrix(n, 5, rng);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i)
    y[i] = 2.0 * x(i, 1) + std::sin(3.0 * x(i, 4)) + 0.1 * rng.normal();

  const std::vector<std::size_t> active = {1, 2, 4};
  const Matrix x_sub = x.select_cols(active);
  TreeParams params;
  params.max_depth = 4;
  params.min_samples_leaf = 10;

  const BinnedDataset binned(x, params.histogram_bins);
  const BinnedDataset binned_sub(x_sub, params.histogram_bins);
  for (std::size_t k = 0; k < active.size(); ++k)
    ASSERT_EQ(binned.edges(active[k]), binned_sub.edges(k));

  std::vector<std::size_t> rows(n);
  for (std::size_t i = 0; i < n; ++i) rows[i] = i;

  RegressionTree masked, reference;
  masked.fit(binned, y, rows, FeatureMask::of(5, active), params);
  reference.fit(binned_sub, y, rows, FeatureMask::all(3), params);

  ASSERT_EQ(masked.node_count(), reference.node_count());
  // Gains map through the column selection.
  const auto& mg = masked.feature_gains();
  const auto& rg = reference.feature_gains();
  EXPECT_DOUBLE_EQ(mg[0], 0.0);
  EXPECT_DOUBLE_EQ(mg[3], 0.0);
  for (std::size_t k = 0; k < active.size(); ++k)
    EXPECT_DOUBLE_EQ(mg[active[k]], rg[k]);
  // Predictions agree exactly on every row, via raw rows and via codes.
  for (std::size_t r = 0; r < n; ++r) {
    EXPECT_DOUBLE_EQ(masked.predict_one(x.row(r)), reference.predict_one(x_sub.row(r)));
    EXPECT_DOUBLE_EQ(masked.predict_binned(binned, r),
                     reference.predict_binned(binned_sub, r));
  }
}

TEST(Binned, TreePredictBinnedMatchesPredictOne) {
  Rng rng(6);
  const std::size_t n = 800;
  const Matrix x = random_matrix(n, 4, rng);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) y[i] = x(i, 0) * x(i, 0) - x(i, 2);
  const BinnedDataset binned(x, 24);
  std::vector<std::size_t> rows(n);
  for (std::size_t i = 0; i < n; ++i) rows[i] = i;
  TreeParams params;
  params.max_depth = 5;
  params.min_samples_leaf = 5;
  RegressionTree tree;
  tree.fit(binned, y, rows, FeatureMask::all(4), params);
  for (std::size_t r = 0; r < n; ++r)
    EXPECT_DOUBLE_EQ(tree.predict_binned(binned, r), tree.predict_one(x.row(r)));
}

TEST(Binned, FittedLeavesMatchTraversal) {
  // The leaf recorded for each in-sample row during the partition must
  // be the leaf a fresh traversal reaches — this is what lets boosting
  // skip predict for in-sample rows.
  Rng rng(7);
  const std::size_t n = 500;
  const Matrix x = random_matrix(n, 3, rng);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) y[i] = std::sin(2.0 * x(i, 1));
  const BinnedDataset binned(x, 24);
  // Fit on a strict subset, in shuffled order, to exercise the
  // local-id -> row mapping.
  std::vector<std::size_t> rows;
  for (std::size_t i = 0; i < n; i += 3) rows.push_back(n - 1 - i);
  RegressionTree tree;
  TreeParams params;
  params.max_depth = 4;
  params.min_samples_leaf = 5;
  tree.fit(binned, y, rows, FeatureMask::all(3), params);
  const auto leaves = tree.fitted_leaves();
  ASSERT_EQ(leaves.size(), rows.size());
  for (std::size_t k = 0; k < rows.size(); ++k) {
    ASSERT_GE(leaves[k], 0);
    EXPECT_DOUBLE_EQ(tree.leaf_value(leaves[k]), tree.predict_binned(binned, rows[k]));
  }
}

TEST(Binned, ValidatesArguments) {
  Matrix x(10, 2);
  EXPECT_THROW((void)BinnedDataset(x, 1), ContractError);
  EXPECT_THROW((void)BinnedDataset(x, 257), ContractError);
  const BinnedDataset ok(x, 8);
  std::vector<double> y(10, 0.0);
  std::vector<std::size_t> rows = {0, 1, 2, 3};
  RegressionTree tree;
  // Mask width must match the dataset.
  EXPECT_THROW(tree.fit(ok, y, rows, FeatureMask::all(3), TreeParams{}), ContractError);
}

}  // namespace
}  // namespace dfv::ml
