#include "common/ascii_plot.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace dfv {
namespace {

TEST(LinePlot, ContainsTitleLegendAndAxis) {
  Series s{"demo", {1, 2, 3, 2, 1}};
  const std::string out = line_plot(s, {.width = 20, .height = 6, .title = "hello"});
  EXPECT_NE(out.find("hello"), std::string::npos);
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find('+'), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(LinePlot, MultiSeriesUsesDistinctGlyphs) {
  const std::string out = line_plot({Series{"a", {1, 2}}, Series{"b", {2, 1}}});
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find('o'), std::string::npos);
}

TEST(LinePlot, EmptyDataHandled) {
  Series s{"empty", {}};
  EXPECT_NE(line_plot(s).find("(no data)"), std::string::npos);
}

TEST(LinePlot, ConstantSeriesDoesNotDivideByZero) {
  Series s{"flat", {5, 5, 5}};
  EXPECT_FALSE(line_plot(s).empty());
}

TEST(LinePlot, YFromZeroExtendsAxis) {
  Series s{"pos", {100, 101}};
  const std::string with = line_plot(s, {.y_from_zero = true});
  EXPECT_NE(with.find("0.00"), std::string::npos);
}

TEST(BarChart, ScalesToMax) {
  const std::vector<std::string> labels = {"small", "big"};
  const std::vector<double> values = {1.0, 10.0};
  const std::string out = bar_chart(labels, values, 10);
  // The larger bar has 10 hashes, the smaller one 1.
  EXPECT_NE(out.find("##########"), std::string::npos);
  EXPECT_NE(out.find("small"), std::string::npos);
}

TEST(BarChart, MismatchedInputThrows) {
  const std::vector<std::string> labels = {"one"};
  const std::vector<double> values = {1.0, 2.0};
  EXPECT_THROW((void)bar_chart(labels, values), ContractError);
}

TEST(BarChart, NegativeValuesClampToZeroBars) {
  const std::vector<std::string> labels = {"neg", "pos"};
  const std::vector<double> values = {-5.0, 5.0};
  const std::string out = bar_chart(labels, values, 8);
  EXPECT_NE(out.find("neg"), std::string::npos);
}

}  // namespace
}  // namespace dfv
