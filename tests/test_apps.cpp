#include "apps/registry.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/stats.hpp"

#include "common/check.hpp"
#include "sched/allocator.hpp"

namespace dfv::apps {
namespace {

class AppsTest : public ::testing::Test {
 protected:
  AppsTest() : topo_(net::DragonflyConfig::small(8)) {
    sched::NodeAllocator alloc(topo_);
    Rng rng(13);
    placement_ = sched::make_placement(
        alloc.allocate(128, sched::AllocPolicy::Clustered, rng), topo_);
  }

  /// Sum of base phase seconds of a step (congestion-free MPI time).
  static double base_mpi(const StepSpec& s) {
    double t = 0.0;
    for (const auto& p : s.phases) t += p.base_seconds;
    return t;
  }

  net::Topology topo_;
  sched::Placement placement_;
  Rng rng_{29};
};

TEST_F(AppsTest, PaperDatasetsAreTheSix) {
  const auto& ds = paper_datasets();
  ASSERT_EQ(ds.size(), 6u);
  EXPECT_EQ(ds[0].label(), "AMG-128");
  EXPECT_EQ(ds[5].label(), "UMT-128");
}

TEST_F(AppsTest, Table1InfoMatchesPaper) {
  const auto rows = table1_rows();
  ASSERT_EQ(rows.size(), 6u);
  EXPECT_EQ(rows[0].version, "1.1");
  EXPECT_EQ(rows[0].input_params, "-P 32 16 16 -n 32 32 32 -problem 2");
  EXPECT_EQ(rows[1].input_params, "-P 32 32 32 -n 32 32 32 -problem 2");
  EXPECT_EQ(rows[2].version, "7.8.0");
  EXPECT_EQ(rows[3].input_params, "n512 large.in");
  EXPECT_EQ(rows[4].input_params, "-f nlpkkt240.bin -t 1E-02 -i 6");
  EXPECT_EQ(rows[5].input_params, "custom_8k.cmg 4 2 4 4 4 0.04");
  for (const auto& r : rows) EXPECT_EQ(r.ranks_per_node, 64);  // 64 of 68 KNL cores
}

TEST_F(AppsTest, StepCountsMatchPaper) {
  EXPECT_EQ(make_amg(128)->num_steps(), 20);
  EXPECT_EQ(make_milc(128)->num_steps(), 80);
  EXPECT_EQ(make_minivite(128)->num_steps(), 6);
  EXPECT_EQ(make_umt(128)->num_steps(), 7);
  EXPECT_EQ(make_milc_long(128, 620)->num_steps(), 620);
}

TEST_F(AppsTest, RegistryRejectsUnknown) {
  EXPECT_THROW((void)make_app("HPL", 128), ContractError);
  EXPECT_THROW((void)make_umt(512), ContractError);
  EXPECT_THROW((void)make_minivite(512), ContractError);
  EXPECT_THROW((void)make_amg(64), ContractError);
}

TEST_F(AppsTest, MilcWarmupStepsAreFaster) {
  const auto milc = make_milc(128);
  const StepSpec warm = milc->step(5, placement_, topo_, rng_);
  const StepSpec steady = milc->step(50, placement_, topo_, rng_);
  EXPECT_LT(base_mpi(warm), 0.5 * base_mpi(steady));
  EXPECT_LT(warm.compute_s, 0.5 * steady.compute_s);
}

TEST_F(AppsTest, UmtStepsRise) {
  const auto umt = make_umt(128);
  const StepSpec first = umt->step(0, placement_, topo_, rng_);
  const StepSpec last = umt->step(6, placement_, topo_, rng_);
  EXPECT_GT(base_mpi(last), base_mpi(first));
  EXPECT_GT(last.compute_s, first.compute_s);
}

TEST_F(AppsTest, MpiFractionTargetsRoughlyMatchPaper) {
  // Congestion-free MPI share: AMG ~76-82%, MILC ~89%, miniVite ~98%,
  // UMT ~30% (§III-B). Evaluate on steady steps.
  const std::map<std::string, std::pair<double, double>> expected = {
      {"AMG", {0.65, 0.90}},
      {"MILC", {0.80, 0.95}},
      {"miniVite", {0.93, 0.995}},
      {"UMT", {0.18, 0.40}},
  };
  for (const auto& spec : paper_datasets()) {
    if (spec.nodes != 128) continue;
    const auto app = make_app(spec.app, spec.nodes);
    const int t = std::min(app->num_steps() - 1, 40);
    double mpi = 0.0, total = 0.0;
    for (int rep = 0; rep < 5; ++rep) {
      const StepSpec s = app->step(t, placement_, topo_, rng_);
      mpi += base_mpi(s);
      total += base_mpi(s) + s.compute_s;
    }
    const double frac = mpi / total;
    const auto [lo, hi] = expected.at(spec.app);
    EXPECT_GE(frac, lo) << spec.app;
    EXPECT_LE(frac, hi) << spec.app;
  }
}

TEST_F(AppsTest, AttributionSharesSumToOne) {
  for (const auto& spec : paper_datasets()) {
    if (spec.nodes != 128) continue;
    const auto app = make_app(spec.app, spec.nodes);
    const StepSpec s = app->step(0, placement_, topo_, rng_);
    for (const auto& phase : s.phases) {
      double sum = 0.0;
      for (const auto& rs : phase.attribution) sum += rs.share;
      EXPECT_NEAR(sum, 1.0, 1e-9) << spec.app;
    }
  }
}

TEST_F(AppsTest, DominantRoutinesMatchPaper) {
  // AMG: Iprobe/Test/Testall/Waitall + Allreduce; MILC: Wait/Isend/Irecv +
  // Allreduce; miniVite: Waitall; UMT: Wait + Allreduce + Barrier.
  auto has_routine = [](const StepSpec& s, mon::MpiRoutine r) {
    for (const auto& p : s.phases)
      for (const auto& rs : p.attribution)
        if (rs.routine == r && rs.share > 0.05) return true;
    return false;
  };
  const StepSpec amg = make_amg(128)->step(0, placement_, topo_, rng_);
  EXPECT_TRUE(has_routine(amg, mon::MpiRoutine::Iprobe));
  EXPECT_TRUE(has_routine(amg, mon::MpiRoutine::Testall));
  EXPECT_TRUE(has_routine(amg, mon::MpiRoutine::Allreduce));

  const StepSpec milc = make_milc(128)->step(30, placement_, topo_, rng_);
  EXPECT_TRUE(has_routine(milc, mon::MpiRoutine::Wait));
  EXPECT_TRUE(has_routine(milc, mon::MpiRoutine::Isend));
  EXPECT_TRUE(has_routine(milc, mon::MpiRoutine::Irecv));

  const StepSpec mv = make_minivite(128)->step(0, placement_, topo_, rng_);
  EXPECT_TRUE(has_routine(mv, mon::MpiRoutine::Waitall));

  const StepSpec umt = make_umt(128)->step(0, placement_, topo_, rng_);
  EXPECT_TRUE(has_routine(umt, mon::MpiRoutine::Wait));
  EXPECT_TRUE(has_routine(umt, mon::MpiRoutine::Barrier));
  EXPECT_TRUE(has_routine(umt, mon::MpiRoutine::Allreduce));
}

TEST_F(AppsTest, DemandsStayWithinPlacement) {
  for (const auto& spec : paper_datasets()) {
    if (spec.nodes != 128) continue;
    const auto app = make_app(spec.app, spec.nodes);
    const StepSpec s = app->step(0, placement_, topo_, rng_);
    std::set<net::RouterId> allowed(placement_.routers.begin(),
                                    placement_.routers.end());
    for (const auto& phase : s.phases)
      for (const auto& d : phase.demands) {
        EXPECT_TRUE(allowed.count(d.src)) << spec.app;
        EXPECT_TRUE(allowed.count(d.dst)) << spec.app;
      }
  }
}

TEST_F(AppsTest, StepIndexBoundsChecked) {
  const auto amg = make_amg(128);
  EXPECT_THROW((void)amg->step(-1, placement_, topo_, rng_), ContractError);
  EXPECT_THROW((void)amg->step(20, placement_, topo_, rng_), ContractError);
}

TEST_F(AppsTest, MiniViteVolumeIsStochasticAndDrivesTime) {
  const auto mv = make_minivite(128);
  std::vector<double> bases, volumes;
  for (int rep = 0; rep < 30; ++rep) {
    const StepSpec s = mv->step(2, placement_, topo_, rng_);
    bases.push_back(s.phases[0].base_seconds);
    double vol = 0.0;
    for (const auto& d : s.phases[0].demands) vol += d.bytes;
    volumes.push_back(vol);
  }
  EXPECT_GT(stats::stddev(bases) / stats::mean(bases), 0.1);
  // Time and volume move together (shared multiplier).
  EXPECT_GT(stats::pearson(bases, volumes), 0.6);
}

TEST_F(AppsTest, CoefficientsEncodePaperSensitivities) {
  // MILC is transit-dominated; UMT is endpoint-dominated (Fig. 9).
  const auto milc = make_milc(128);
  const auto umt = make_umt(128);
  EXPECT_GT(milc->coefficients().rt_weight, milc->coefficients().pt_weight);
  EXPECT_GT(umt->coefficients().pt_weight, 5.0 * umt->coefficients().rt_weight);
  // AMG at 512 has more transit exposure than at 128.
  EXPECT_GT(make_amg(512)->coefficients().rt_weight,
            make_amg(128)->coefficients().rt_weight);
}

}  // namespace
}  // namespace dfv::apps
