// dfv::faults: spec parsing/validation, deterministic injection across
// thread counts, wraparound round trips, imputation, policy semantics,
// and the faulted end-to-end campaign pipeline.
#include "faults/faults.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>

#include "analysis/deviation.hpp"
#include "analysis/forecast.hpp"
#include "common/check.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "exec/exec.hpp"
#include "faults/inject.hpp"
#include "faults/repair.hpp"
#include "sim/campaign.hpp"
#include "sim/dataset.hpp"

namespace dfv {
namespace {

sim::Dataset make_synthetic(int runs, int steps, std::uint64_t seed,
                            bool integer_counters = false) {
  sim::Dataset ds;
  ds.spec = {"MILC", 128};
  Rng rng(seed);
  for (int r = 0; r < runs; ++r) {
    sim::RunRecord rec;
    rec.job_id = 100 + r;
    rec.submit_time_s = r * 1000.0;
    rec.start_time_s = r * 1000.0 + 60.0;
    rec.num_routers = 32 + r;
    rec.num_groups = 3;
    rec.profile.add_compute(12.5);
    rec.profile.add(mon::MpiRoutine::Wait, 30.0);
    for (int t = 0; t < steps; ++t) {
      rec.step_times.push_back(5.0 + 0.25 * t + rng.uniform());
      mon::CounterVec cv{};
      for (int c = 0; c < mon::kNumCounters; ++c) {
        const double v = rng.uniform(0, 1e9);
        cv[std::size_t(c)] = integer_counters ? std::floor(v) : v;
      }
      rec.step_counters.push_back(cv);
      mon::LdmsFeatures lf;
      for (auto& v : lf.io) v = rng.uniform(0, 1e8);
      for (auto& v : lf.sys) v = rng.uniform(0, 1e8);
      rec.step_ldms.push_back(lf);
    }
    rec.end_time_s = rec.start_time_s + rec.total_time_s();
    ds.runs.push_back(std::move(rec));
  }
  return ds;
}

/// NaN-safe exact comparison: degraded telemetry contains NaN, so vector
/// operator== cannot express "bit-identical".
void expect_bits_equal(const std::vector<double>& a, const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a[i]), std::bit_cast<std::uint64_t>(b[i]))
        << "index " << i;
}

void expect_run_bits_equal(const sim::RunRecord& p, const sim::RunRecord& q) {
  expect_bits_equal(p.step_times, q.step_times);
  ASSERT_EQ(p.step_counters.size(), q.step_counters.size());
  for (std::size_t t = 0; t < p.step_counters.size(); ++t)
    for (int c = 0; c < mon::kNumCounters; ++c)
      EXPECT_EQ(std::bit_cast<std::uint64_t>(p.step_counters[t][std::size_t(c)]),
                std::bit_cast<std::uint64_t>(q.step_counters[t][std::size_t(c)]));
  ASSERT_EQ(p.step_ldms.size(), q.step_ldms.size());
  for (std::size_t t = 0; t < p.step_ldms.size(); ++t) {
    for (int i = 0; i < mon::kNumIoFeatures; ++i)
      EXPECT_EQ(std::bit_cast<std::uint64_t>(p.step_ldms[t].io[std::size_t(i)]),
                std::bit_cast<std::uint64_t>(q.step_ldms[t].io[std::size_t(i)]));
    for (int i = 0; i < mon::kNumSysFeatures; ++i)
      EXPECT_EQ(std::bit_cast<std::uint64_t>(p.step_ldms[t].sys[std::size_t(i)]),
                std::bit_cast<std::uint64_t>(q.step_ldms[t].sys[std::size_t(i)]));
  }
  EXPECT_EQ(p.step_quality, q.step_quality);
  EXPECT_EQ(p.profile_missing, q.profile_missing);
  EXPECT_EQ(p.profile.compute_s, q.profile.compute_s);
  EXPECT_EQ(p.profile.routine_s, q.profile.routine_s);
}

class FaultsTest : public ::testing::Test {
 protected:
  void SetUp() override { set_log_level(LogLevel::Warn); }
};

// ---------------------------------------------------------------------------
// Spec parsing and validation
// ---------------------------------------------------------------------------

TEST_F(FaultsTest, SpecValidation) {
  faults::FaultSpec spec;
  EXPECT_NO_THROW(spec.validate());
  spec.rate = 0.5;
  EXPECT_NO_THROW(spec.validate());
  spec.rate = -0.1;
  EXPECT_THROW(spec.validate(), ContractError);
  spec.rate = 1.5;
  EXPECT_THROW(spec.validate(), ContractError);
  spec = {};
  spec.kinds = 0xe0;  // bits outside the known set
  EXPECT_THROW(spec.validate(), ContractError);
  spec = {};
  spec.spike_magnitude = 0.0;
  EXPECT_THROW(spec.validate(), ContractError);
  spec = {};
  spec.truncate_min_keep = 0.0;
  EXPECT_THROW(spec.validate(), ContractError);
}

TEST_F(FaultsTest, ParseFaultKinds) {
  EXPECT_EQ(faults::parse_fault_kinds("all"), faults::kAllFaultKinds);
  EXPECT_EQ(faults::parse_fault_kinds("none"), 0);
  EXPECT_EQ(faults::parse_fault_kinds("dropout"),
            std::uint8_t(faults::FaultKind::Dropout));
  EXPECT_EQ(faults::parse_fault_kinds("dropout,wraparound"),
            std::uint8_t(faults::FaultKind::Dropout) |
                std::uint8_t(faults::FaultKind::Wraparound));
  EXPECT_THROW((void)faults::parse_fault_kinds("bogus"), ContractError);
  EXPECT_THROW((void)faults::parse_fault_kinds(""), ContractError);
  // Round trip through the printer.
  const std::uint8_t mask = faults::parse_fault_kinds("corrupt,missing-profile");
  EXPECT_EQ(faults::parse_fault_kinds(faults::fault_kinds_to_string(mask)), mask);
  EXPECT_EQ(faults::fault_kinds_to_string(faults::kAllFaultKinds), "all");
}

TEST_F(FaultsTest, ParseRepairPolicy) {
  EXPECT_EQ(faults::parse_repair_policy("strict"), faults::RepairPolicy::Strict);
  EXPECT_EQ(faults::parse_repair_policy("repair"), faults::RepairPolicy::Repair);
  EXPECT_EQ(faults::parse_repair_policy("drop"), faults::RepairPolicy::Drop);
  EXPECT_EQ(faults::parse_repair_policy("keep"), faults::RepairPolicy::Keep);
  EXPECT_THROW((void)faults::parse_repair_policy("fix"), ContractError);
}

// ---------------------------------------------------------------------------
// Injection determinism
// ---------------------------------------------------------------------------

TEST_F(FaultsTest, InjectionBitIdenticalAcrossThreadCounts) {
  faults::FaultSpec spec;
  spec.rate = 0.15;
  sim::Dataset a = make_synthetic(24, 30, 99);
  sim::Dataset b = a;

  exec::ThreadPool::instance().resize(1);
  sim::inject_faults(a, spec, 0xabcd);
  exec::ThreadPool::instance().resize(8);
  sim::inject_faults(b, spec, 0xabcd);
  exec::ThreadPool::instance().resize(exec::resolve_threads());

  ASSERT_EQ(a.runs.size(), b.runs.size());
  for (std::size_t r = 0; r < a.runs.size(); ++r) expect_run_bits_equal(a.runs[r], b.runs[r]);
}

TEST_F(FaultsTest, InjectionActuallyDegradesData) {
  faults::FaultSpec spec;
  spec.rate = 0.3;
  sim::Dataset ds = make_synthetic(10, 40, 7);
  sim::inject_faults(ds, spec, 0x5eed);
  int flagged = 0, nan_cells = 0;
  bool any_short = false, any_profile_lost = false;
  for (const auto& run : ds.runs) {
    any_short |= run.steps() < 40;
    any_profile_lost |= run.profile_missing;
    for (int t = 0; t < run.steps(); ++t) {
      if (run.quality(t) != faults::kQualityOk) ++flagged;
      for (int c = 0; c < mon::kNumCounters; ++c)
        if (!std::isfinite(run.step_counters[std::size_t(t)][std::size_t(c)])) ++nan_cells;
    }
  }
  EXPECT_GT(flagged, 0);
  EXPECT_GT(nan_cells, 0);
  EXPECT_TRUE(any_short);
  EXPECT_TRUE(any_profile_lost);
}

TEST_F(FaultsTest, ZeroRateIsANoOp) {
  const sim::Dataset before = make_synthetic(4, 10, 3);
  sim::Dataset after = before;
  sim::inject_faults(after, faults::FaultSpec{}, 0x1234);
  ASSERT_EQ(after.runs.size(), before.runs.size());
  for (std::size_t r = 0; r < before.runs.size(); ++r) {
    expect_run_bits_equal(after.runs[r], before.runs[r]);
    EXPECT_TRUE(after.runs[r].step_quality.empty());  // clean fast path intact
  }
}

// ---------------------------------------------------------------------------
// Wraparound
// ---------------------------------------------------------------------------

TEST_F(FaultsTest, WraparoundRoundTripIsExact) {
  // Hardware counters are integers; integer readings below 2^32 survive
  // the wrap + unwind round trip bit-exactly.
  const sim::Dataset original = make_synthetic(6, 20, 11, /*integer_counters=*/true);
  sim::Dataset ds = original;
  faults::FaultSpec spec;
  spec.rate = 1.0;  // wrap one counter in every step
  spec.kinds = std::uint8_t(faults::FaultKind::Wraparound);
  sim::inject_faults(ds, spec, 0xfeed);

  // Injection is silent: negative deltas, no quality flags yet.
  int negative = 0;
  for (const auto& run : ds.runs)
    for (const auto& cv : run.step_counters)
      for (double v : cv)
        if (v < 0.0) ++negative;
  EXPECT_EQ(negative, 6 * 20);

  const sim::RepairReport rep = ds.repair(faults::RepairPolicy::Repair);
  EXPECT_EQ(rep.wrapped_cells, 6 * 20);
  EXPECT_EQ(rep.corrupt_cells, 0);
  EXPECT_EQ(rep.runs_dropped, 0);
  ASSERT_EQ(ds.runs.size(), original.runs.size());
  for (std::size_t r = 0; r < ds.runs.size(); ++r) {
    const auto& got = ds.runs[r];
    const auto& want = original.runs[r];
    for (std::size_t t = 0; t < got.step_counters.size(); ++t) {
      for (int c = 0; c < mon::kNumCounters; ++c)
        EXPECT_EQ(got.step_counters[t][std::size_t(c)],
                  want.step_counters[t][std::size_t(c)]);
      EXPECT_TRUE(got.quality(int(t)) & faults::kQualityWrapped);
      EXPECT_TRUE(got.step_usable(int(t)));  // unwound exactly, not imputed
    }
  }
}

// ---------------------------------------------------------------------------
// Imputation
// ---------------------------------------------------------------------------

TEST_F(FaultsTest, ImputeLinearInterpolatesGaps) {
  std::vector<double> v{0.0, -1.0, -1.0, 3.0};
  const std::vector<std::uint8_t> bad{0, 1, 1, 0};
  faults::impute_linear(v, bad);
  EXPECT_DOUBLE_EQ(v[1], 1.0);
  EXPECT_DOUBLE_EQ(v[2], 2.0);

  std::vector<double> edge{-1.0, 5.0, -1.0};
  const std::vector<std::uint8_t> edge_bad{1, 0, 1};
  faults::impute_linear(edge, edge_bad);
  EXPECT_DOUBLE_EQ(edge[0], 5.0);  // nearest-fill at the edges
  EXPECT_DOUBLE_EQ(edge[2], 5.0);

  std::vector<double> hopeless{1.0, 2.0};
  const std::vector<std::uint8_t> all_bad{1, 1};
  faults::impute_linear(hopeless, all_bad);
  EXPECT_DOUBLE_EQ(hopeless[0], 1.0);  // no good entry: left untouched
  EXPECT_DOUBLE_EQ(hopeless[1], 2.0);
}

TEST_F(FaultsTest, RepairImputesDroppedSteps) {
  // Linear telemetry with one dropped step: imputation must reconstruct
  // the missing values exactly.
  sim::Dataset ds;
  ds.spec = {"AMG", 128};
  sim::RunRecord rec;
  const int T = 9;
  for (int t = 0; t < T; ++t) {
    rec.step_times.push_back(10.0 + 2.0 * t);
    mon::CounterVec cv{};
    for (int c = 0; c < mon::kNumCounters; ++c) cv[std::size_t(c)] = 100.0 * (t + 1);
    rec.step_counters.push_back(cv);
    mon::LdmsFeatures lf;
    for (auto& v : lf.io) v = 7.0 * t;
    for (auto& v : lf.sys) v = 3.0 * t;
    rec.step_ldms.push_back(lf);
  }
  rec.step_quality.assign(T, faults::kQualityOk);
  // Blank step 4 the way the injector does.
  const int gap = 4;
  rec.step_quality[gap] = faults::kQualityDropped;
  rec.step_counters[gap].fill(std::numeric_limits<double>::quiet_NaN());
  rec.step_ldms[gap].io.fill(std::numeric_limits<double>::quiet_NaN());
  rec.step_ldms[gap].sys.fill(std::numeric_limits<double>::quiet_NaN());
  ds.runs.push_back(rec);

  const sim::RepairReport rep = ds.repair(faults::RepairPolicy::Repair);
  EXPECT_EQ(rep.bad_steps, 1);
  EXPECT_EQ(rep.imputed_steps, 1);
  EXPECT_EQ(rep.runs_dropped, 0);
  const auto& run = ds.runs[0];
  EXPECT_TRUE(run.quality(gap) & faults::kQualityImputed);
  EXPECT_TRUE(run.step_usable(gap));
  for (int c = 0; c < mon::kNumCounters; ++c)
    EXPECT_DOUBLE_EQ(run.step_counters[gap][std::size_t(c)], 100.0 * (gap + 1));
  for (double v : run.step_ldms[gap].io) EXPECT_DOUBLE_EQ(v, 7.0 * gap);
  for (double v : run.step_ldms[gap].sys) EXPECT_DOUBLE_EQ(v, 3.0 * gap);
}

// ---------------------------------------------------------------------------
// Policy semantics
// ---------------------------------------------------------------------------

TEST_F(FaultsTest, CleanDataIsUntouchedByRepair) {
  const sim::Dataset before = make_synthetic(5, 12, 21);
  sim::Dataset after = before;
  const sim::RepairReport rep = after.repair(faults::RepairPolicy::Repair);
  EXPECT_FALSE(rep.any_anomaly());
  ASSERT_EQ(after.runs.size(), before.runs.size());
  for (std::size_t r = 0; r < before.runs.size(); ++r)
    expect_run_bits_equal(after.runs[r], before.runs[r]);
  // Strict accepts clean data too.
  sim::Dataset strict = before;
  EXPECT_NO_THROW((void)strict.repair(faults::RepairPolicy::Strict));
}

TEST_F(FaultsTest, StrictThrowsOnDegradedData) {
  faults::FaultSpec spec;
  spec.rate = 0.2;
  sim::Dataset ds = make_synthetic(8, 20, 31);
  sim::inject_faults(ds, spec, 0xbad);
  EXPECT_THROW((void)ds.repair(faults::RepairPolicy::Strict), ContractError);
}

TEST_F(FaultsTest, DropPolicyExcludesSamplesFromAnalysis) {
  faults::FaultSpec spec;
  spec.rate = 0.2;
  spec.kinds = std::uint8_t(faults::FaultKind::Dropout);
  sim::Dataset ds = make_synthetic(10, 25, 41);
  sim::inject_faults(ds, spec, 0xd70b);
  const sim::RepairReport rep = ds.repair(faults::RepairPolicy::Drop);
  EXPECT_GT(rep.bad_steps, 0);
  EXPECT_EQ(rep.imputed_steps, 0);  // Drop never reconstructs

  std::size_t usable = 0;
  for (const auto& run : ds.runs)
    for (int t = 0; t < run.steps(); ++t)
      if (run.step_usable(t)) ++usable;
  const auto cs = analysis::build_centered_samples(ds);
  EXPECT_EQ(cs.y.size(), usable);
  EXPECT_LT(cs.y.size(), ds.runs.size() * 25);
  for (double y : cs.y) EXPECT_TRUE(std::isfinite(y));
}

TEST_F(FaultsTest, TruncatedRunsAreDropped) {
  sim::Dataset ds = make_synthetic(5, 20, 51);
  ds.runs[2].step_times.resize(12);
  ds.runs[2].step_counters.resize(12);
  ds.runs[2].step_ldms.resize(12);
  EXPECT_EQ(ds.steps_per_run(), 20);  // modal length, not first-run length

  const sim::RepairReport rep = ds.repair(faults::RepairPolicy::Repair);
  EXPECT_EQ(rep.truncated_runs, 1);
  EXPECT_EQ(rep.runs_dropped, 1);
  EXPECT_EQ(ds.runs.size(), 4u);
  for (const auto& run : ds.runs) EXPECT_EQ(run.steps(), 20);
}

TEST_F(FaultsTest, MissingProfileSurvivesCsvRoundTrip) {
  faults::FaultSpec spec;
  spec.rate = 1.0;
  spec.kinds = std::uint8_t(faults::FaultKind::MissingProfile);
  sim::Dataset ds = make_synthetic(3, 5, 61);
  sim::inject_faults(ds, spec, 0x9);
  for (const auto& run : ds.runs) {
    EXPECT_TRUE(run.profile_missing);
    EXPECT_EQ(run.profile.compute_s, 0.0);
  }
  const sim::Dataset back =
      sim::dataset_from_csv(sim::dataset_to_csv(ds), faults::RepairPolicy::Keep);
  ASSERT_EQ(back.runs.size(), 3u);
  for (std::size_t r = 0; r < back.runs.size(); ++r) {
    EXPECT_TRUE(back.runs[r].profile_missing);
    EXPECT_EQ(back.runs[r].step_quality, ds.runs[r].step_quality);
  }
}

// ---------------------------------------------------------------------------
// Faulted campaign end to end
// ---------------------------------------------------------------------------

sim::CampaignConfig faulted_tiny_config(std::uint64_t seed, double rate) {
  sim::CampaignConfig cfg = sim::CampaignConfig::small(seed);
  cfg.days = 3;
  cfg.datasets = {{"MILC", 128}};
  cfg.faults.rate = rate;
  return cfg;
}

TEST_F(FaultsTest, FaultedCampaignBitIdenticalAcrossThreadCounts) {
  sim::CampaignConfig serial = faulted_tiny_config(13, 0.08);
  serial.threads = 1;
  const sim::CampaignResult a = sim::run_campaign(serial);

  sim::CampaignConfig eight = faulted_tiny_config(13, 0.08);
  eight.threads = 8;
  const sim::CampaignResult b = sim::run_campaign(eight);
  exec::ThreadPool::instance().resize(exec::resolve_threads());

  ASSERT_EQ(a.datasets.size(), b.datasets.size());
  for (std::size_t d = 0; d < a.datasets.size(); ++d) {
    ASSERT_EQ(a.datasets[d].num_runs(), b.datasets[d].num_runs());
    for (std::size_t r = 0; r < a.datasets[d].runs.size(); ++r)
      expect_run_bits_equal(a.datasets[d].runs[r], b.datasets[d].runs[r]);
  }
}

TEST_F(FaultsTest, FingerprintSeparatesFaultConfigs) {
  const sim::CampaignConfig clean = faulted_tiny_config(5, 0.0);
  sim::CampaignConfig faulted = faulted_tiny_config(5, 0.05);
  EXPECT_NE(sim::config_fingerprint(clean), sim::config_fingerprint(faulted));

  sim::CampaignConfig other_rate = faulted;
  other_rate.faults.rate = 0.10;
  EXPECT_NE(sim::config_fingerprint(faulted), sim::config_fingerprint(other_rate));

  sim::CampaignConfig other_seed = faulted;
  other_seed.faults.seed += 1;
  EXPECT_NE(sim::config_fingerprint(faulted), sim::config_fingerprint(other_seed));

  sim::CampaignConfig other_kinds = faulted;
  other_kinds.faults.kinds = std::uint8_t(faults::FaultKind::Dropout);
  EXPECT_NE(sim::config_fingerprint(faulted), sim::config_fingerprint(other_kinds));
}

TEST_F(FaultsTest, ConfigValidateRejectsBadFaultSpec) {
  sim::CampaignConfig cfg = faulted_tiny_config(5, 0.05);
  EXPECT_NO_THROW(cfg.validate());
  cfg.faults.rate = 2.0;
  EXPECT_THROW(cfg.validate(), ContractError);
}

TEST_F(FaultsTest, RepairedFaultedCampaignFeedsAnalysesCleanly) {
  // The acceptance path: inject at 5%, repair, and the full analysis
  // chain runs with finite results and no NaN poisoning.
  sim::CampaignResult res = sim::run_campaign(faulted_tiny_config(23, 0.05));
  sim::Dataset& ds = res.datasets[0];
  const sim::RepairReport rep = ds.repair(faults::RepairPolicy::Repair);
  EXPECT_TRUE(rep.any_anomaly());

  for (const auto& run : ds.runs)
    for (int t = 0; t < run.steps(); ++t)
      if (run.step_usable(t)) {
        EXPECT_TRUE(std::isfinite(run.step_times[std::size_t(t)]));
        for (int c = 0; c < mon::kNumCounters; ++c)
          EXPECT_TRUE(std::isfinite(run.step_counters[std::size_t(t)][std::size_t(c)]));
      }

  analysis::DeviationConfig dcfg;  // tiny dataset: few folds, light GBR
  dcfg.rfe.folds = 2;
  dcfg.rfe.gbr.n_trees = 20;
  const auto dev = analysis::analyze_deviation(ds, dcfg);
  EXPECT_TRUE(std::isfinite(dev.cv_mape));
  EXPECT_GT(dev.samples, 0u);

  analysis::ForecastConfig fcfg;
  fcfg.folds = 2;
  const auto fc =
      analysis::evaluate_forecast(ds, {5, 5, analysis::FeatureSet::App}, fcfg);
  EXPECT_TRUE(std::isfinite(fc.mape_attention));
  EXPECT_GT(fc.windows, 0u);
}

}  // namespace
}  // namespace dfv
