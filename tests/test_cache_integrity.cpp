// Integrity layer (FNV-1a footers, atomic publish) and the hardened
// campaign cache: corruption is detected by checksum, the entry is
// evicted, and the campaign regenerates transparently.
#include "common/integrity.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/check.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "exec/exec.hpp"
#include "sim/campaign.hpp"
#include "sim/dataset.hpp"

namespace dfv {
namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void spit(const fs::path& p, const std::string& content) {
  std::ofstream out(p, std::ios::binary | std::ios::trunc);
  out << content;
}

sim::Dataset tiny_dataset(int runs, int steps, std::uint64_t seed) {
  sim::Dataset ds;
  ds.spec = {"MILC", 128};
  Rng rng(seed);
  for (int r = 0; r < runs; ++r) {
    sim::RunRecord rec;
    rec.job_id = 100 + r;
    rec.num_routers = 32;
    rec.num_groups = 3;
    rec.profile.add_compute(10.0);
    for (int t = 0; t < steps; ++t) {
      rec.step_times.push_back(5.0 + rng.uniform());
      mon::CounterVec cv{};
      for (int c = 0; c < mon::kNumCounters; ++c) cv[std::size_t(c)] = rng.uniform(0, 1e9);
      rec.step_counters.push_back(cv);
      rec.step_ldms.emplace_back();
    }
    ds.runs.push_back(std::move(rec));
  }
  return ds;
}

sim::CampaignConfig tiny_config(std::uint64_t seed = 42) {
  sim::CampaignConfig cfg = sim::CampaignConfig::small(seed);
  cfg.days = 3;
  cfg.datasets = {{"MILC", 128}, {"UMT", 128}};
  return cfg;
}

class CacheIntegrityTest : public ::testing::Test {
 protected:
  void SetUp() override { set_log_level(LogLevel::Warn); }
};

// ---------------------------------------------------------------------------
// FNV-1a and the checksum footer
// ---------------------------------------------------------------------------

TEST_F(CacheIntegrityTest, Fnv1a64KnownVectors) {
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ull);
}

TEST_F(CacheIntegrityTest, FooterRoundTrip) {
  const std::string original = "alpha,beta\n1,2\n3,4\n";
  std::string text = original;
  append_checksum_footer(text);
  EXPECT_NE(text.find(kChecksumPrefix), std::string::npos);
  EXPECT_EQ(verify_and_strip_checksum(text), ChecksumStatus::Ok);
  EXPECT_EQ(text, original);
}

TEST_F(CacheIntegrityTest, BitFlipIsDetected) {
  std::string text = "alpha,beta\n1,2\n3,4\n";
  append_checksum_footer(text);
  text[3] ^= 0x01;  // flip one bit of the body
  EXPECT_EQ(verify_and_strip_checksum(text), ChecksumStatus::Mismatch);
}

TEST_F(CacheIntegrityTest, MissingFooterLeavesContentUntouched) {
  const std::string original = "no footer here\n";
  std::string text = original;
  EXPECT_EQ(verify_and_strip_checksum(text), ChecksumStatus::Missing);
  EXPECT_EQ(text, original);
  // An empty file has no footer either.
  std::string empty;
  EXPECT_EQ(verify_and_strip_checksum(empty), ChecksumStatus::Missing);
}

// ---------------------------------------------------------------------------
// Atomic writes
// ---------------------------------------------------------------------------

TEST_F(CacheIntegrityTest, AtomicWritePublishesAndCleansUp) {
  const fs::path dir = fs::path(testing::TempDir()) / "dfv_atomic";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const fs::path file = dir / "out.csv";

  ASSERT_TRUE(atomic_write_file(file.string(), "first\n"));
  EXPECT_EQ(slurp(file), "first\n");
  EXPECT_FALSE(fs::exists(file.string() + ".tmp"));  // temp renamed away

  // Overwrite is atomic too.
  ASSERT_TRUE(atomic_write_file(file.string(), "second\n"));
  EXPECT_EQ(slurp(file), "second\n");
  EXPECT_FALSE(fs::exists(file.string() + ".tmp"));
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Dataset save/load with integrity
// ---------------------------------------------------------------------------

TEST_F(CacheIntegrityTest, SaveLoadDatasetVerifiesChecksum) {
  const fs::path dir = fs::path(testing::TempDir()) / "dfv_ds_io";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const fs::path file = dir / "ds.csv";

  const sim::Dataset ds = tiny_dataset(3, 5, 9);
  ASSERT_TRUE(sim::save_dataset(ds, file.string()));
  EXPECT_FALSE(fs::exists(file.string() + ".tmp"));

  const sim::Dataset back = sim::load_dataset(file.string(), /*require_checksum=*/true);
  ASSERT_EQ(back.runs.size(), ds.runs.size());
  for (std::size_t r = 0; r < ds.runs.size(); ++r)
    EXPECT_EQ(back.runs[r].step_times, ds.runs[r].step_times);
  fs::remove_all(dir);
}

TEST_F(CacheIntegrityTest, CorruptDatasetFileThrows) {
  const fs::path dir = fs::path(testing::TempDir()) / "dfv_ds_corrupt";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const fs::path file = dir / "ds.csv";
  ASSERT_TRUE(sim::save_dataset(tiny_dataset(2, 4, 5), file.string()));

  std::string raw = slurp(file);
  raw[raw.size() / 2] ^= 0x04;  // flip one bit mid-file
  spit(file, raw);
  EXPECT_THROW((void)sim::load_dataset(file.string()), ContractError);

  // A zero-byte file (crash mid-create before the rename) has no footer:
  // rejected whenever the checksum is required.
  spit(file, "");
  EXPECT_THROW((void)sim::load_dataset(file.string(), /*require_checksum=*/true),
               ContractError);
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Campaign cache eviction and regeneration
// ---------------------------------------------------------------------------

void expect_same_totals(const sim::CampaignResult& a, const sim::CampaignResult& b) {
  ASSERT_EQ(a.datasets.size(), b.datasets.size());
  for (std::size_t d = 0; d < a.datasets.size(); ++d) {
    ASSERT_EQ(a.datasets[d].num_runs(), b.datasets[d].num_runs());
    for (std::size_t r = 0; r < a.datasets[d].runs.size(); ++r)
      EXPECT_EQ(a.datasets[d].runs[r].total_time_s(),
                b.datasets[d].runs[r].total_time_s());
  }
}

fs::path cache_entry_dir(const std::string& cache, const sim::CampaignConfig& cfg) {
  std::ostringstream os;
  os << "campaign_" << std::hex << sim::config_fingerprint(cfg);
  return fs::path(cache) / os.str();
}

TEST_F(CacheIntegrityTest, CorruptCacheEntryIsEvictedAndRegenerated) {
  const std::string cache = testing::TempDir() + "/dfv_cache_corrupt";
  fs::remove_all(cache);
  const sim::CampaignConfig cfg = tiny_config(19);

  const sim::CampaignResult fresh = sim::run_campaign_cached(cfg, cache);
  const fs::path entry = cache_entry_dir(cache, cfg);
  ASSERT_TRUE(fs::exists(entry / "META"));
  const fs::path victim = entry / "MILC-128.csv";
  ASSERT_TRUE(fs::exists(victim));

  // Flip one byte in the middle of a published dataset.
  std::string raw = slurp(victim);
  raw[raw.size() / 2] ^= 0x10;
  spit(victim, raw);

  // The next load detects the mismatch, evicts the entry, and regenerates
  // the identical campaign (generation is deterministic).
  const sim::CampaignResult regen = sim::run_campaign_cached(cfg, cache);
  expect_same_totals(fresh, regen);

  // The republished entry verifies again and left no temp files behind.
  EXPECT_NO_THROW((void)sim::load_dataset(victim.string(), /*require_checksum=*/true,
                                          faults::RepairPolicy::Keep));
  for (const auto& e : fs::recursive_directory_iterator(cache))
    EXPECT_NE(e.path().extension(), ".tmp") << e.path();
  // And a third call loads the healthy entry cleanly.
  expect_same_totals(fresh, sim::run_campaign_cached(cfg, cache));
  fs::remove_all(cache);
}

TEST_F(CacheIntegrityTest, PartialCacheEntryIsRegenerated) {
  const std::string cache = testing::TempDir() + "/dfv_cache_partial";
  fs::remove_all(cache);
  const sim::CampaignConfig cfg = tiny_config(23);

  const sim::CampaignResult fresh = sim::run_campaign_cached(cfg, cache);
  const fs::path entry = cache_entry_dir(cache, cfg);

  // Simulate a lost dataset file with META intact (e.g. manual deletion).
  fs::remove(entry / "UMT-128.csv");
  const sim::CampaignResult regen = sim::run_campaign_cached(cfg, cache);
  expect_same_totals(fresh, regen);
  EXPECT_TRUE(fs::exists(entry / "UMT-128.csv"));
  fs::remove_all(cache);
}

TEST_F(CacheIntegrityTest, FaultedCampaignCacheRoundTripsVerbatim) {
  // Degraded telemetry (NaN cells, quality masks, short runs) must
  // survive the cache byte-exactly under the Keep policy.
  const std::string cache = testing::TempDir() + "/dfv_cache_faulted";
  fs::remove_all(cache);
  sim::CampaignConfig cfg = tiny_config(29);
  cfg.faults.rate = 0.1;

  const sim::CampaignResult fresh = sim::run_campaign_cached(cfg, cache);
  const sim::CampaignResult loaded = sim::run_campaign_cached(cfg, cache);
  ASSERT_EQ(loaded.datasets.size(), fresh.datasets.size());
  for (std::size_t d = 0; d < fresh.datasets.size(); ++d) {
    const auto& x = fresh.datasets[d];
    const auto& y = loaded.datasets[d];
    ASSERT_EQ(x.num_runs(), y.num_runs());
    for (std::size_t r = 0; r < x.runs.size(); ++r) {
      EXPECT_EQ(x.runs[r].step_quality, y.runs[r].step_quality);
      EXPECT_EQ(x.runs[r].profile_missing, y.runs[r].profile_missing);
      ASSERT_EQ(x.runs[r].steps(), y.runs[r].steps());
    }
  }
  fs::remove_all(cache);
}

}  // namespace
}  // namespace dfv
