#include "apps/comm_patterns.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/check.hpp"
#include "sched/allocator.hpp"

namespace dfv::apps {
namespace {

TEST(Factor3, ProductAndNearCubic) {
  for (int n : {1, 8, 27, 64, 128, 512, 1000}) {
    const auto d = factor3(n);
    EXPECT_EQ(d[0] * d[1] * d[2], n) << n;
    EXPECT_GE(d[0], d[1]);
    EXPECT_GE(d[1], d[2]);
  }
  EXPECT_EQ(factor3(128), (std::array<int, 3>{8, 4, 4}));
  EXPECT_EQ(factor3(512), (std::array<int, 3>{8, 8, 8}));
}

TEST(Factor4, ProductPreserved) {
  for (int n : {16, 128, 256, 512, 1024}) {
    const auto d = factor4(n);
    EXPECT_EQ(d[0] * d[1] * d[2] * d[3], n) << n;
    for (int x : d) EXPECT_GE(x, 1);
  }
}

class PatternsTest : public ::testing::Test {
 protected:
  PatternsTest() : topo_(net::DragonflyConfig::small(6)) {
    sched::NodeAllocator alloc(topo_);
    Rng rng(9);
    placement_ = sched::make_placement(
        alloc.allocate(64, sched::AllocPolicy::Clustered, rng), topo_);
  }
  net::Topology topo_;
  sched::Placement placement_;
  Rng rng_{21};
};

TEST_F(PatternsTest, DemandBuilderMergesDuplicatesAndSkipsLocal) {
  DemandBuilder b(placement_, topo_);
  b.add(0, 8, 100.0);
  b.add(0, 8, 50.0);   // same node pair: merged
  b.add(0, 1, 999.0);  // nodes 0,1 share a router in a packed allocation: dropped
  const auto demands = b.build();
  double total = 0.0;
  for (const auto& d : demands) total += d.bytes;
  const net::RouterId r0 = topo_.router_of_node(placement_.nodes[0]);
  const net::RouterId r1 = topo_.router_of_node(placement_.nodes[1]);
  if (r0 == r1) {
    ASSERT_EQ(demands.size(), 1u);
    EXPECT_DOUBLE_EQ(total, 150.0);
  } else {
    EXPECT_DOUBLE_EQ(total, 150.0 + 999.0);
  }
}

TEST_F(PatternsTest, DemandBuilderBoundsChecked) {
  DemandBuilder b(placement_, topo_);
  EXPECT_THROW(b.add(-1, 0, 1.0), ContractError);
  EXPECT_THROW(b.add(0, placement_.num_nodes(), 1.0), ContractError);
}

TEST_F(PatternsTest, Stencil3dVolumeMatchesFaces) {
  const auto dims = factor3(placement_.num_nodes());
  const double bytes_per_face = 1e6;
  const auto demands = stencil3d(placement_, topo_, dims, bytes_per_face);
  // Total volume (before same-router drops) = nodes * 2 faces per dim with
  // dims > 1 * bytes. Demands only lose same-router pairs, so the total is
  // bounded above by that and positive.
  int active_dims = 0;
  for (int d : dims)
    if (d > 1) ++active_dims;
  const double upper = double(placement_.num_nodes()) * 2.0 * active_dims * bytes_per_face;
  double total = 0.0;
  for (const auto& d : demands) total += d.bytes;
  EXPECT_GT(total, 0.0);
  EXPECT_LE(total, upper + 1e-6);
}

TEST_F(PatternsTest, Stencil3dRejectsWrongDims) {
  EXPECT_THROW((void)stencil3d(placement_, topo_, {3, 3, 3}, 1.0), ContractError);
}

TEST_F(PatternsTest, Stencil4dSymmetricDemands) {
  const auto dims = factor4(placement_.num_nodes());
  const auto demands = stencil4d(placement_, topo_, dims, 1e6);
  // Every demand's reverse direction exists with the same volume.
  std::map<std::pair<net::RouterId, net::RouterId>, double> vol;
  for (const auto& d : demands) vol[{d.src, d.dst}] += d.bytes;
  for (const auto& [key, v] : vol) {
    const auto rev = vol.find({key.second, key.first});
    ASSERT_NE(rev, vol.end());
    EXPECT_NEAR(rev->second, v, 1e-6);
  }
}

TEST_F(PatternsTest, IrregularExchangeVolumeApproximatesTarget) {
  const double target = 1e9;
  // Average over draws: lognormal with sigma 0.8 is noisy per flow.
  double total = 0.0;
  const int trials = 20;
  for (int i = 0; i < trials; ++i) {
    const auto demands = irregular_exchange(placement_, topo_, 8, target, 0.8, rng_);
    for (const auto& d : demands) total += d.bytes;
  }
  // Same-router pairs drop some volume; expect the ballpark.
  EXPECT_GT(total / trials, 0.3 * target);
  EXPECT_LT(total / trials, 1.3 * target);
}

TEST_F(PatternsTest, IrregularExchangeEndpointsWithinJob) {
  const auto demands = irregular_exchange(placement_, topo_, 8, 1e8, 0.5, rng_);
  std::set<net::RouterId> allowed(placement_.routers.begin(), placement_.routers.end());
  for (const auto& d : demands) {
    EXPECT_TRUE(allowed.count(d.src));
    EXPECT_TRUE(allowed.count(d.dst));
    EXPECT_NE(d.src, d.dst);
  }
}

}  // namespace
}  // namespace dfv::apps
