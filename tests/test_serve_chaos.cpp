// The dfv serve robustness layer under deterministic network chaos:
// a retrying client completes a fixed workload byte-identical to the
// fault-free run while a seeded chaos::Proxy injects delays,
// truncations, disconnects, and resets; the admission gate sheds with
// structured Overloaded errors whose count matches the server's own
// counters; deadlines expire as structured errors; stalled peers are
// evicted; and a drain-timeout expiry answers still-pending requests
// with ShuttingDown instead of silently dropping them.
//
// Everything here runs under TSan in tier-1 (the `chaos` stage).
#include "serve/chaos.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "api/wire.hpp"
#include "common/log.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace dfv::serve {
namespace {

api::SessionOptions small_options() {
  api::SessionOptions opt;
  sim::CampaignConfig cfg = sim::CampaignConfig::small(2026);
  cfg.days = 8;
  cfg.datasets = {{"MILC", 128}, {"UMT", 128}};
  opt.config = cfg;
  return opt;
}

std::shared_ptr<const api::ResidentCampaign> shared_campaign() {
  static std::shared_ptr<const api::ResidentCampaign> campaign =
      api::ResidentCampaign::load(small_options());
  return campaign;
}

ServerOptions server_options(int shards) {
  ServerOptions opt;
  opt.shards = shards;
  opt.session = small_options();
  opt.campaign = shared_campaign();
  return opt;
}

/// The fixed chaos workload: run-scoped, dataset-scoped, stateless, and
/// one guaranteed contract violation, every response deterministic.
std::vector<api::Request> workload() {
  std::vector<api::Request> reqs;
  for (std::uint32_t r = 0; r < 8; ++r)
    reqs.push_back(api::RunLookupRequest{}.app(r % 2 ? "UMT" : "MILC").nodes(128).run(r % 4));
  reqs.push_back(api::NeighborhoodRequest{}.app("MILC").nodes(128));
  reqs.push_back(api::ForecastRequest{}.app("MILC").nodes(128).run(1).center(12).m(3).k(5));
  reqs.push_back(api::TopologyRequest{}.group_count(4));
  reqs.push_back(api::CampaignSummaryRequest{});
  reqs.push_back(api::RunLookupRequest{}.app("MILC").nodes(128).run(1000000));
  return reqs;
}

/// A compute-heavy request owned by the (app, nodes) dataset key —
/// enough work that millisecond deadlines reliably expire mid-handling.
api::Request heavy_grid() {
  api::ForecastGridRequest q = api::ForecastGridRequest{}.app("MILC").nodes(128);
  for (int m : {2, 3, 4, 5})
    for (int k : {4, 8, 16})
      q.cell({m, k, analysis::FeatureSet::AppPlacementIoSys});
  return q;
}

[[nodiscard]] std::size_t open_fd_count() {
  std::size_t n = 0;
  for (const auto& entry : std::filesystem::directory_iterator("/proc/self/fd")) {
    (void)entry;
    ++n;
  }
  return n;
}

class ServeChaos : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    set_log_level(LogLevel::Warn);
    (void)shared_campaign();  // load once, outside any fd accounting
  }
};

TEST(ChaosSpecContract, InvalidSpecsAreRejected) {
  chaos::ChaosSpec bad;
  bad.delay_prob = -0.1;
  EXPECT_THROW(bad.validate(), ContractError);
  chaos::ChaosSpec sums;
  sums.delay_prob = 0.6;
  sums.truncate_prob = 0.6;
  EXPECT_THROW(sums.validate(), ContractError);
  chaos::ChaosSpec delays;
  delays.delay_min_ms = 9;
  delays.delay_max_ms = 3;
  EXPECT_THROW(delays.validate(), ContractError);
}

// The acceptance test of the robustness layer: under a seeded fault mix
// the retrying client's responses are byte-identical to the fault-free
// path, the server drains cleanly, and no file descriptor leaks.
TEST_F(ServeChaos, RetriedWorkloadIsByteIdenticalUnderChaos) {
  // Fault-free expectations from an identical in-process session.
  api::Session reference(small_options(), shared_campaign());
  const auto reqs = workload();
  std::vector<std::string> expected;
  expected.reserve(reqs.size());
  for (const auto& req : reqs)
    expected.push_back(api::encode_response(reference.handle(req)));

  const std::size_t fds_before = open_fd_count();
  {
    Server server(server_options(4));
    server.start();

    chaos::ChaosSpec spec;
    spec.seed = 20260808;
    spec.delay_prob = 0.10;
    spec.truncate_prob = 0.04;
    spec.disconnect_prob = 0.03;
    spec.reset_prob = 0.03;
    spec.delay_min_ms = 1;
    spec.delay_max_ms = 3;
    spec.event_stride_bytes = 256;
    chaos::Proxy proxy(spec, server.port());
    proxy.start();

    RetryPolicy policy;
    policy.max_attempts = 12;
    policy.timeout_ms = 10'000;
    policy.backoff_base_ms = 1;
    policy.backoff_max_ms = 20;
    RetryClient client(proxy.port(), policy);

    constexpr int kRounds = 12;
    for (int round = 0; round < kRounds; ++round) {
      for (std::size_t i = 0; i < reqs.size(); ++i) {
        EXPECT_EQ(client.call_raw(reqs[i]), expected[i])
            << "round " << round << " request " << i;
      }
    }

    // The proxy actually interfered, and the client actually recovered.
    const auto ps = proxy.stats();
    EXPECT_GT(ps.delays, 0u);
    EXPECT_GT(ps.truncations + ps.disconnects + ps.resets, 0u);
    EXPECT_GT(client.stats().reconnects, 0u);
    EXPECT_EQ(client.stats().calls, std::uint64_t(kRounds) * reqs.size());

    // Clean drain: the counters stayed consistent through the faults.
    client.close();
    proxy.stop();
    server.stop();
    const auto ss = server.stats();
    EXPECT_EQ(ss.local + ss.forwarded + ss.shed_overload, ss.requests);
  }
  // Zero leaked connections or pipes across the whole scenario.
  EXPECT_EQ(open_fd_count(), fds_before);
}

// Same seed, same workload → the proxy injects the same fault schedule.
TEST_F(ServeChaos, FaultScheduleReplaysExactly) {
  Server server(server_options(2));
  server.start();

  chaos::ChaosSpec spec;
  spec.seed = 7;
  spec.delay_prob = 0.08;
  spec.truncate_prob = 0.05;
  spec.disconnect_prob = 0.04;
  spec.reset_prob = 0.03;
  spec.event_stride_bytes = 200;

  const auto reqs = workload();
  chaos::ProxyStats runs[2];
  for (int pass = 0; pass < 2; ++pass) {
    chaos::Proxy proxy(spec, server.port());
    proxy.start();
    RetryPolicy policy;
    policy.max_attempts = 12;
    policy.backoff_base_ms = 1;
    policy.backoff_max_ms = 10;
    RetryClient client(proxy.port(), policy);
    for (int round = 0; round < 4; ++round)
      for (const auto& req : reqs) (void)client.call_raw(req);
    client.close();
    proxy.stop();
    runs[pass] = proxy.stats();
  }
  server.stop();

  EXPECT_EQ(runs[0].delays, runs[1].delays);
  EXPECT_EQ(runs[0].truncations, runs[1].truncations);
  EXPECT_EQ(runs[0].disconnects, runs[1].disconnects);
  EXPECT_EQ(runs[0].resets, runs[1].resets);
  EXPECT_EQ(runs[0].bytes_forwarded, runs[1].bytes_forwarded);
  EXPECT_EQ(runs[0].connections, runs[1].connections);
}

TEST_F(ServeChaos, OverloadShedsStructuredErrorsAndCountersMatch) {
  ServerOptions opt = server_options(2);
  opt.max_inflight = 1;  // shed as soon as two forwards overlap
  opt.retry_after_ms = 7;
  Server server(std::move(opt));
  server.start();

  constexpr int kClients = 6;
  constexpr int kRounds = 60;
  std::atomic<std::uint64_t> observed{0};
  std::atomic<int> bad_hint{0};
  std::atomic<int> unexpected{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Client client;
      if (client.connect(server.port()) != std::nullopt) {
        unexpected.fetch_add(1000);
        return;
      }
      for (int r = 0; r < kRounds; ++r) {
        // ~half of these forward across the two shards; every fifth is a
        // slower dataset-scoped request that widens the overlap window.
        api::Request req =
            r % 5 == 4
                ? api::Request{api::NeighborhoodRequest{}.app(c % 2 ? "UMT" : "MILC").nodes(128)}
                : api::Request{
                      api::RunLookupRequest{}.app(r % 2 ? "UMT" : "MILC").nodes(128).run(
                          std::uint32_t(r) % 4)};
        const auto resp = client.call(req);
        if (const auto* err = std::get_if<api::ErrorResponse>(&resp)) {
          if (err->code == api::ErrorCode::Overloaded) {
            observed.fetch_add(1);
            if (err->retry_after_ms != 7) bad_hint.fetch_add(1);
          } else {
            unexpected.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(unexpected.load(), 0);
  EXPECT_EQ(bad_hint.load(), 0);
  EXPECT_GT(observed.load(), 0u);  // the gate actually engaged

  // The shed counter matches the Overloaded responses observed on the
  // wire exactly — nothing double-counted, nothing silently dropped.
  const auto stats = server.stats();
  EXPECT_EQ(stats.shed_overload, observed.load());
  EXPECT_EQ(stats.local + stats.forwarded + stats.shed_overload, stats.requests);

  // The wire-level StatsRequest reports the same counters (it bypasses
  // the admission gate, so overload is observable while it happens).
  Client probe;
  ASSERT_EQ(probe.connect(server.port()), std::nullopt);
  const auto resp = probe.call(api::StatsRequest{});
  const auto* wire_stats = std::get_if<api::StatsResponse>(&resp);
  ASSERT_NE(wire_stats, nullptr);
  EXPECT_EQ(wire_stats->shards, 2u);
  EXPECT_EQ(wire_stats->shed_overload, observed.load());
  probe.close();

  // A RetryClient rides through the same gate transparently.
  RetryPolicy policy;
  policy.backoff_base_ms = 1;
  policy.backoff_max_ms = 8;
  RetryClient retry(server.port(), policy);
  for (std::uint32_t r = 0; r < 8; ++r) {
    const auto answered = retry.call(api::RunLookupRequest{}.app("MILC").nodes(128).run(r % 4));
    EXPECT_TRUE(std::holds_alternative<api::RunLookupResponse>(answered));
  }
  retry.close();
  server.stop();
}

TEST_F(ServeChaos, DeadlineExpiryIsAStructuredError) {
  Server server(server_options(1));
  server.start();
  Client client;
  ASSERT_EQ(client.connect(server.port()), std::nullopt);

  // A 1 ms envelope deadline cannot survive the heavy grid: the stale
  // result is replaced by a structured expiry, and counted.
  CallOptions opt;
  opt.deadline_ms = 1;
  const auto expired = client.call(heavy_grid(), opt);
  const auto* err = std::get_if<api::ErrorResponse>(&expired);
  ASSERT_NE(err, nullptr);
  EXPECT_EQ(err->code, api::ErrorCode::DeadlineExceeded);
  EXPECT_NE(err->message.find("expired"), std::string::npos);
  EXPECT_EQ(server.stats().shed_deadline, 1u);

  // Without a deadline the same request succeeds on the same connection.
  const auto ok = client.call(heavy_grid());
  EXPECT_TRUE(std::holds_alternative<api::ForecastGridResponse>(ok));
  client.close();
  server.stop();

  // The server-side default deadline behaves identically for requests
  // whose envelope carries none.
  ServerOptions dopt = server_options(1);
  dopt.default_deadline_ms = 1;
  Server strict(std::move(dopt));
  strict.start();
  Client c2;
  ASSERT_EQ(c2.connect(strict.port()), std::nullopt);
  const auto resp = c2.call(heavy_grid());
  const auto* err2 = std::get_if<api::ErrorResponse>(&resp);
  ASSERT_NE(err2, nullptr);
  EXPECT_EQ(err2->code, api::ErrorCode::DeadlineExceeded);
  c2.close();
  strict.stop();
}

TEST_F(ServeChaos, StalledMidFrameConnectionIsEvicted) {
  ServerOptions opt = server_options(1);
  opt.read_timeout_ms = 300;
  Server server(std::move(opt));
  server.start();

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  // dfv-lint: allow(blocking-io): a deliberately raw peer, staged to stall
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)), 0);
  write_frame(fd, hello_payload(api::kApiVersion));
  const auto hello = read_frame(fd, 2000);
  ASSERT_TRUE(hello.has_value());

  // Start a frame (100 announced bytes), deliver only the header, stall.
  const char header[4] = {100, 0, 0, 0};
  write_all(fd, header, sizeof(header));
  // The server evicts within read_timeout_ms plus a couple of poll
  // ticks; the blocking read observes the close as EOF.
  char byte = 0;
  timeval tv{};
  tv.tv_sec = 5;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  const ssize_t r = ::read(fd, &byte, 1);
  EXPECT_EQ(r, 0);  // closed by the server, not a timeout
  EXPECT_EQ(server.stats().evicted_stalled, 1u);
  ::close(fd);

  // The server keeps serving well-behaved peers after the eviction.
  Client ok;
  ASSERT_EQ(ok.connect(server.port()), std::nullopt);
  EXPECT_TRUE(
      std::holds_alternative<api::TopologyResponse>(ok.call(api::TopologyRequest{})));
  ok.close();
  server.stop();
}

TEST_F(ServeChaos, DrainTimeoutAnswersPendingRequestsWithShutdownError) {
  ServerOptions opt = server_options(2);
  opt.drain_timeout_ms = 400;
  Server server(std::move(opt));
  server.start();

  // Place the victim's connection on the shard that does NOT own the
  // MILC dataset key, so its request must forward to the owner — which
  // three heavy grids will keep busy past the drain deadline.
  const std::size_t owner = shard_of(key_fingerprint("MILC", 128), 2);
  std::uint32_t owned_run = 0;
  while (shard_of(key_fingerprint("MILC", 128, owned_run), 2) != owner) ++owned_run;

  Client heavies[3];
  Client victim;
  const auto connect_heavies = [&] {
    for (auto& h : heavies) ASSERT_EQ(h.connect(server.port()), std::nullopt);
  };
  // Round-robin dealing: connection i lands on shard i % 2. The victim
  // must land on shard 1 - owner.
  if (owner == 0) {
    connect_heavies();  // connections 0..2
    ASSERT_EQ(victim.connect(server.port()), std::nullopt);  // conn 3 → shard 1
  } else {
    ASSERT_EQ(victim.connect(server.port()), std::nullopt);  // conn 0 → shard 0
    connect_heavies();
  }

  std::vector<std::thread> heavy_threads;
  for (auto& h : heavies) {
    heavy_threads.emplace_back([&h] {
      try {
        // May be answered in full, answered ShuttingDown, or cut by the
        // phase-2 close — all acceptable ends for the heavy senders.
        (void)h.call_raw(heavy_grid());
      } catch (const TransportError&) {
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(250));

  api::Response victim_resp;
  bool victim_threw = false;
  std::thread victim_thread([&] {
    try {
      victim_resp =
          victim.call(api::RunLookupRequest{}.app("MILC").nodes(128).run(owned_run));
    } catch (const TransportError&) {
      victim_threw = true;
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  server.stop();  // the drain deadline expires while the owner is busy
  for (auto& t : heavy_threads) t.join();
  victim_thread.join();

  ASSERT_FALSE(victim_threw);
  const auto* err = std::get_if<api::ErrorResponse>(&victim_resp);
  ASSERT_NE(err, nullptr);
  EXPECT_EQ(err->code, api::ErrorCode::ShuttingDown);
  EXPECT_GE(server.stats().shutdown_aborted, 1u);
}

TEST(ServeProtocol, PeerDeathAndMalformedFramesAreDistinctErrors) {
  // Oversized announced length: a protocol bug (FrameError), because no
  // conforming peer emits a frame above kMaxFrameBytes.
  {
    int sp[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sp), 0);
    const unsigned char huge[4] = {0xff, 0xff, 0xff, 0x7f};
    write_all(sp[0], huge, sizeof(huge));
    try {
      (void)read_frame(sp[1]);
      FAIL() << "oversized frame header was accepted";
    } catch (const FrameError& e) {
      EXPECT_NE(std::string(e.what()).find("protocol bug"), std::string::npos);
    }
    ::close(sp[0]);
    ::close(sp[1]);
  }
  // Mid-frame EOF: the peer died (PeerGoneError), retryable.
  {
    int sp[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sp), 0);
    const unsigned char partial[7] = {10, 0, 0, 0, 'a', 'b', 'c'};
    write_all(sp[0], partial, sizeof(partial));
    ::close(sp[0]);
    try {
      (void)read_frame(sp[1]);
      FAIL() << "torn frame was accepted";
    } catch (const PeerGoneError& e) {
      EXPECT_NE(std::string(e.what()).find("mid-frame"), std::string::npos);
    }
    ::close(sp[1]);
  }
  // Clean EOF on the record boundary: not an error at all.
  {
    int sp[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sp), 0);
    ::close(sp[0]);
    EXPECT_FALSE(read_frame(sp[1]).has_value());
    ::close(sp[1]);
  }
  // A silent peer past the timeout: TimeoutError, connection poisoned.
  {
    int sp[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sp), 0);
    EXPECT_THROW((void)read_frame(sp[1], 50), TimeoutError);
    ::close(sp[0]);
    ::close(sp[1]);
  }
}

TEST(ServeRetry, ExhaustedAttemptsReportTheLastError) {
  // A port with no listener: bind one, note the number, close it.
  const int probe = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(probe, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(probe, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)), 0);
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ASSERT_EQ(::getsockname(probe, reinterpret_cast<sockaddr*>(&bound), &len), 0);
  const std::uint16_t dead_port = ntohs(bound.sin_port);
  ::close(probe);

  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.timeout_ms = 200;
  policy.backoff_base_ms = 1;
  policy.backoff_max_ms = 2;
  RetryClient client(dead_port, policy);
  try {
    (void)client.call(api::TopologyRequest{});
    FAIL() << "call against a dead port succeeded";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("after 3 attempts"), std::string::npos);
  }
  EXPECT_EQ(client.stats().calls, 1u);
  EXPECT_EQ(client.stats().attempts, 3u);
  EXPECT_EQ(client.stats().retried_transport, 3u);
}

}  // namespace
}  // namespace dfv::serve
