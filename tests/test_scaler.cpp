#include "ml/scaler.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"

#include <cmath>

namespace dfv::ml {
namespace {

TEST(Scaler, StandardizesColumns) {
  Matrix x(4, 2);
  for (std::size_t r = 0; r < 4; ++r) {
    x(r, 0) = double(r);          // mean 1.5
    x(r, 1) = 100.0 + 10.0 * r;   // mean 115
  }
  StandardScaler s;
  const Matrix z = s.fit_transform(x);
  for (std::size_t c = 0; c < 2; ++c) {
    double mean = 0.0, var = 0.0;
    for (std::size_t r = 0; r < 4; ++r) mean += z(r, c);
    mean /= 4.0;
    for (std::size_t r = 0; r < 4; ++r) var += (z(r, c) - mean) * (z(r, c) - mean);
    var /= 4.0;
    EXPECT_NEAR(mean, 0.0, 1e-12);
    EXPECT_NEAR(var, 1.0, 1e-12);
  }
}

TEST(Scaler, ConstantColumnMapsToZero) {
  Matrix x(3, 1, 7.0);
  StandardScaler s;
  const Matrix z = s.fit_transform(x);
  for (std::size_t r = 0; r < 3; ++r) EXPECT_DOUBLE_EQ(z(r, 0), 0.0);
}

TEST(Scaler, TransformUsesFitStatistics) {
  Matrix train(2, 1);
  train(0, 0) = 0.0;
  train(1, 0) = 2.0;  // mean 1, std 1
  StandardScaler s;
  s.fit(train);
  Matrix test(1, 1);
  test(0, 0) = 3.0;
  s.transform(test);
  EXPECT_NEAR(test(0, 0), 2.0, 1e-12);
}

TEST(Scaler, TargetRoundTrip) {
  StandardScaler s;
  const std::vector<double> y = {10, 20, 30};
  s.fit_target(y);
  for (double v : {5.0, 20.0, 100.0})
    EXPECT_NEAR(s.inverse_target(s.transform_target(v)), v, 1e-9);
  EXPECT_NEAR(s.transform_target(20.0), 0.0, 1e-12);
}

TEST(Scaler, MismatchedTransformThrows) {
  Matrix train(2, 2);
  StandardScaler s;
  s.fit(train);
  Matrix wrong(2, 3);
  EXPECT_THROW(s.transform(wrong), ContractError);
}

}  // namespace
}  // namespace dfv::ml
