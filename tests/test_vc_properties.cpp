// Property sweep over the credit/VC DES: delivery completeness, hop
// bounds, stall accounting sanity, and conservation must hold for every
// routing policy and traffic pattern (TEST_P grid).
#include <gtest/gtest.h>

#include <tuple>

#include "net/vc_sim.hpp"

namespace dfv::net {
namespace {

using Param = std::tuple<RoutingPolicy, TrafficPattern>;

class VcProperties : public ::testing::TestWithParam<Param> {
 protected:
  VcProperties() : topo_(DragonflyConfig::small(5)) {}

  VcStats run(double load, int packets) {
    VcSimParams params;
    params.policy = std::get<0>(GetParam());
    VcPacketSim sim(topo_, params, 77);
    return sim.run_synthetic(std::get<1>(GetParam()), load, packets);
  }

  Topology topo_;
};

TEST_P(VcProperties, AllPacketsDeliveredAtModerateLoad) {
  const VcStats s = run(0.3, 80);
  EXPECT_EQ(s.delivered, s.injected);
  EXPECT_FALSE(s.deadlocked);
}

TEST_P(VcProperties, HopCountsWithinDiameterBounds) {
  const VcStats s = run(0.2, 60);
  // Minimal <= 5 hops; Valiant and per-hop adaptive detours stay within
  // the two-leg bound (~10); adaptive wandering cannot exceed it because
  // every hop makes progress toward the (possibly intermediate) target.
  EXPECT_GE(s.mean_hops, 1.0);
  EXPECT_LE(s.mean_hops, 10.0);
}

TEST_P(VcProperties, LatencyNonNegativeAndOrdered) {
  const VcStats s = run(0.2, 60);
  EXPECT_GT(s.mean_latency, 0.0);
  EXPECT_GE(s.p99_latency, s.mean_latency);
  EXPECT_GT(s.throughput, 0.0);
}

TEST_P(VcProperties, StallCyclesNonNegative) {
  const VcStats s = run(0.8, 120);
  for (double v : s.stall_cycles_rq) EXPECT_GE(v, 0.0);
  for (double v : s.stall_cycles_rs) EXPECT_GE(v, 0.0);
}

TEST_P(VcProperties, HigherLoadNeverReducesStalls) {
  VcSimParams params;
  params.policy = std::get<0>(GetParam());
  params.buffer_flits = 12;
  VcPacketSim low(topo_, params, 5), high(topo_, params, 5);
  const VcStats a = low.run_synthetic(std::get<1>(GetParam()), 0.1, 120);
  const VcStats b = high.run_synthetic(std::get<1>(GetParam()), 1.0, 120);
  EXPECT_GE(b.total_stall_cycles() + 1.0, a.total_stall_cycles());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, VcProperties,
    ::testing::Combine(::testing::Values(RoutingPolicy::Minimal, RoutingPolicy::Valiant,
                                         RoutingPolicy::Ugal),
                       ::testing::Values(TrafficPattern::Uniform,
                                         TrafficPattern::AdversarialShift,
                                         TrafficPattern::Hotspot)),
    [](const ::testing::TestParamInfo<Param>& pinfo) {
      std::string name = std::string(to_string(std::get<0>(pinfo.param))) + "_" +
                         to_string(std::get<1>(pinfo.param));
      for (char& c : name)
        if (c == '-') c = '_';
      return name;
    });

}  // namespace
}  // namespace dfv::net
