// End-to-end integration: a small campaign through every analysis via
// the VariabilityStudy facade. This is the miniature of what the bench
// binaries do at Cori scale.
#include "core/study.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/log.hpp"

namespace dfv::core {
namespace {

class StudyIntegration : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    set_log_level(LogLevel::Warn);
    sim::CampaignConfig cfg = sim::CampaignConfig::small(2026);
    cfg.days = 8;
    cfg.datasets = {{"MILC", 128}, {"UMT", 128}};
    study_ = new VariabilityStudy(cfg);
    (void)study_->campaign();  // generate once for all tests
  }
  static void TearDownTestSuite() {
    delete study_;
    study_ = nullptr;
  }
  static VariabilityStudy* study_;
};

VariabilityStudy* StudyIntegration::study_ = nullptr;

TEST_F(StudyIntegration, CampaignShape) {
  const auto& milc = study_->dataset("MILC", 128);
  EXPECT_GE(milc.num_runs(), 8u);
  EXPECT_EQ(milc.steps_per_run(), 80);
  // Mean step curve shows the warmup/steady structure.
  const auto curve = milc.mean_step_curve();
  EXPECT_LT(curve[5], 0.6 * curve[50]);
}

TEST_F(StudyIntegration, RunsVaryAcrossCampaign) {
  const auto& milc = study_->dataset("MILC", 128);
  const auto totals = milc.total_times();
  const double best = *std::min_element(totals.begin(), totals.end());
  const double worst = *std::max_element(totals.begin(), totals.end());
  EXPECT_GT(worst / best, 1.05);  // some variability even in a short window
}

TEST_F(StudyIntegration, NeighborhoodAnalysisRuns) {
  const auto res = study_->neighborhood("MILC", 128);
  EXPECT_FALSE(res.ranked.empty());
  EXPECT_GT(res.optimal_fraction, 0.0);
  const auto blamed = analysis::blamed_users(res, 9, 1e-4);
  EXPECT_LE(blamed.size(), 9u);
}

TEST_F(StudyIntegration, DeviationAnalysisRuns) {
  analysis::DeviationConfig cfg;
  cfg.rfe.folds = 4;
  cfg.rfe.gbr.n_trees = 25;
  const auto res = study_->deviation("MILC", 128, cfg);
  EXPECT_EQ(res.relevance.size(), std::size_t(mon::kNumCounters));
  EXPECT_GT(res.cv_mape, 0.0);
  EXPECT_LT(res.cv_mape, 50.0);
  double total_survival = 0.0;
  for (double v : res.survival) total_survival += v;
  EXPECT_GT(total_survival, 0.0);
}

TEST_F(StudyIntegration, ForecastRuns) {
  analysis::ForecastConfig cfg;
  cfg.folds = 3;
  cfg.attention.epochs = 12;
  const analysis::WindowConfig wcfg{10, 20, analysis::FeatureSet::App};
  const auto eval = study_->forecast("MILC", 128, wcfg, cfg);
  EXPECT_GT(eval.windows, 50u);
  EXPECT_GT(eval.mape_attention, 0.0);
  EXPECT_LT(eval.mape_attention, 80.0);
  EXPECT_GT(eval.mape_mean, 0.0);
}

}  // namespace
}  // namespace dfv::core
