#include "ml/mutual_info.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace dfv::ml {
namespace {

TEST(MutualInfo, IdenticalVariablesEqualEntropy) {
  const std::vector<int> x = {0, 0, 1, 1, 1, 0, 1, 0};
  EXPECT_NEAR(mutual_information(x, x), entropy(x), 1e-12);
}

TEST(MutualInfo, DeterministicFunctionPreservesMi) {
  const std::vector<int> x = {0, 1, 0, 1, 1, 0};
  std::vector<int> y;
  for (int v : x) y.push_back(1 - v);  // bijection
  EXPECT_NEAR(mutual_information(x, y), entropy(x), 1e-12);
}

TEST(MutualInfo, IndependentVariablesNearZero) {
  Rng rng(5);
  std::vector<int> x, y;
  for (int i = 0; i < 20000; ++i) {
    x.push_back(int(rng.bernoulli(0.5)));
    y.push_back(int(rng.bernoulli(0.3)));
  }
  EXPECT_LT(mutual_information(x, y), 0.002);
}

TEST(MutualInfo, Symmetric) {
  Rng rng(6);
  std::vector<int> x, y;
  for (int i = 0; i < 500; ++i) {
    const int v = int(rng.uniform_index(3));
    x.push_back(v);
    y.push_back(rng.bernoulli(0.7) ? v : int(rng.uniform_index(3)));
  }
  EXPECT_NEAR(mutual_information(x, y), mutual_information(y, x), 1e-12);
  EXPECT_GT(mutual_information(x, y), 0.1);  // strongly dependent
}

TEST(MutualInfo, BoundedByMinEntropy) {
  const std::vector<int> x = {0, 1, 2, 3, 0, 1, 2, 3};
  const std::vector<int> y = {0, 0, 1, 1, 0, 0, 1, 1};
  const double mi = mutual_information(x, y);
  EXPECT_LE(mi, entropy(y) + 1e-12);
  EXPECT_LE(mi, entropy(x) + 1e-12);
}

TEST(MutualInfo, ConstantVariableGivesZero) {
  const std::vector<int> c(10, 7);
  const std::vector<int> y = {0, 1, 0, 1, 0, 1, 0, 1, 0, 1};
  EXPECT_NEAR(mutual_information(c, y), 0.0, 1e-12);
}

TEST(MutualInfo, BinaryDoubleConvenience) {
  const std::vector<double> x = {0, 1, 0, 1};
  const std::vector<double> y = {0, 1, 0, 1};
  EXPECT_NEAR(mutual_information_binary(x, y), std::log(2.0), 1e-12);
}

TEST(MutualInfo, SizeMismatchThrows) {
  const std::vector<int> x = {1};
  const std::vector<int> y = {1, 2};
  EXPECT_THROW((void)mutual_information(x, y), ContractError);
}

TEST(Entropy, UniformAndDegenerate) {
  const std::vector<int> uniform = {0, 1, 2, 3};
  EXPECT_NEAR(entropy(uniform), std::log(4.0), 1e-12);
  const std::vector<int> constant(5, 9);
  EXPECT_DOUBLE_EQ(entropy(constant), 0.0);
  EXPECT_DOUBLE_EQ(entropy(std::vector<int>{}), 0.0);
}

}  // namespace
}  // namespace dfv::ml
