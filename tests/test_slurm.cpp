#include "sched/slurm.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/check.hpp"
#include "mon/ldms.hpp"

namespace dfv::sched {
namespace {

class SlurmTest : public ::testing::Test {
 protected:
  SlurmTest() : topo_(net::DragonflyConfig::small(6)) {}

  SlurmSim make_sim(int quiet_users = 4) {
    auto users = default_user_population(quiet_users);
    for (auto& u : users) {
      u.min_nodes = std::min(u.min_nodes, 32);
      u.max_nodes = std::min(u.max_nodes, 64);
    }
    return SlurmSim(topo_, std::move(users), mon::make_default_io_routers(topo_, 1), 11);
  }

  net::Topology topo_;
};

TEST_F(SlurmTest, TimeAdvancesMonotonically) {
  SlurmSim sim = make_sim();
  sim.advance_to(3600.0);
  EXPECT_DOUBLE_EQ(sim.now(), 3600.0);
  EXPECT_THROW(sim.advance_to(1800.0), ContractError);
}

TEST_F(SlurmTest, BackgroundJobsArriveAndFinish) {
  SlurmSim sim = make_sim();
  sim.advance_to(86400.0);
  EXPECT_GT(sim.running_background().size(), 0u);
  EXPECT_GT(sim.sacct().size(), sim.running_background().size());
  // Finished jobs have end times within the window.
  int finished = 0;
  for (const auto& rec : sim.sacct())
    if (rec.end_s >= 0.0) {
      ++finished;
      EXPECT_GE(rec.end_s, rec.start_s);
    }
  EXPECT_GT(finished, 0);
}

TEST_F(SlurmTest, UtilizationCapRespected) {
  SlurmSim sim = make_sim();
  sim.set_max_background_utilization(0.5);
  sim.advance_to(5 * 86400.0);
  EXPECT_LE(sim.utilization(), 0.5 + 64.0 / sim.busy_nodes());
}

TEST_F(SlurmTest, InstrumentedJobLifecycle) {
  SlurmSim sim = make_sim();
  sim.advance_to(3600.0);
  const auto id = sim.start_instrumented_job("MILC", 16, kCampaignUserId);
  ASSERT_TRUE(id.has_value());
  const Placement& p = sim.placement_of(*id);
  EXPECT_EQ(p.num_nodes(), 16);
  const int busy_with_job = sim.busy_nodes();
  sim.end_instrumented_job(*id);
  EXPECT_EQ(sim.busy_nodes(), busy_with_job - 16);
  EXPECT_THROW((void)sim.placement_of(*id), ContractError);

  // sacct recorded the job under our user with an end time.
  const auto& sacct = sim.sacct();
  const auto it = std::find_if(sacct.begin(), sacct.end(),
                               [&](const JobRecord& r) { return r.job_id == *id; });
  ASSERT_NE(it, sacct.end());
  EXPECT_EQ(it->user_id, kCampaignUserId);
  EXPECT_GE(it->end_s, it->start_s);
}

TEST_F(SlurmTest, BackgroundEpochChangesOnJobChurn) {
  SlurmSim sim = make_sim();
  const auto e0 = sim.background_epoch();
  sim.advance_to(86400.0);
  EXPECT_NE(sim.background_epoch(), e0);
}

TEST_F(SlurmTest, NeighborhoodFindsOverlappingLargeJobs) {
  SlurmSim sim = make_sim();
  sim.advance_to(2 * 86400.0);
  ASSERT_FALSE(sim.running_background().empty());
  const auto& job = sim.running_background().front();
  const auto users = sim.neighborhood_users(sim.now() - 10.0, sim.now(), 1);
  EXPECT_NE(std::find(users.begin(), users.end(), job.user_id), users.end());

  // A threshold larger than every job excludes everyone.
  const auto none = sim.neighborhood_users(sim.now() - 10.0, sim.now(), 100000);
  EXPECT_TRUE(none.empty());
}

TEST_F(SlurmTest, NeighborhoodRespectsTimeWindow) {
  SlurmSim sim = make_sim();
  sim.advance_to(86400.0);
  // A window before any job started sees nobody.
  const auto users = sim.neighborhood_users(-100.0, -50.0, 1);
  EXPECT_TRUE(users.empty());
}

TEST_F(SlurmTest, IntensitiesEvolve) {
  SlurmSim sim = make_sim();
  sim.advance_to(2 * 86400.0);
  ASSERT_FALSE(sim.running_background().empty());
  const double before = sim.running_background().front().intensity();
  sim.step_intensities(3600.0);
  const double after = sim.running_background().front().intensity();
  EXPECT_NE(before, after);
  EXPECT_GT(after, 0.0);
}

TEST_F(SlurmTest, DeterministicGivenSeed) {
  SlurmSim a = make_sim(), b = make_sim();
  a.advance_to(86400.0);
  b.advance_to(86400.0);
  ASSERT_EQ(a.sacct().size(), b.sacct().size());
  for (std::size_t i = 0; i < a.sacct().size(); ++i) {
    EXPECT_EQ(a.sacct()[i].user_id, b.sacct()[i].user_id);
    EXPECT_DOUBLE_EQ(a.sacct()[i].start_s, b.sacct()[i].start_s);
  }
}

}  // namespace
}  // namespace dfv::sched
