// dfv-lint lexical layer: a lightweight C++ tokenizer sufficient for the
// project's rule checks — no preprocessing, no semantic analysis.
//
// The lexer produces a flat token stream (identifiers, numbers, strings,
// punctuation) with line numbers, skips comments and preprocessor
// directives, and extracts `// dfv-lint: allow(<rule>[,<rule>...]): reason`
// suppression comments so the rule engine can honor them.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace dfv::lint {

enum class TokKind {
  Id,     ///< identifier or keyword
  Num,    ///< numeric literal
  Str,    ///< string or character literal (text not retained)
  Punct,  ///< operator / punctuation (multi-char ops are one token)
};

struct Tok {
  TokKind kind;
  std::string text;
  int line;
};

/// One `// dfv-lint: allow(...)` comment. Applies to diagnostics on its own
/// line and on the following line (so it can trail the code or precede it).
struct Suppression {
  int line = 0;
  std::vector<std::string> rules;
  bool has_reason = false;  ///< text after `allow(...)`: explains why
  bool used = false;        ///< set by the rule engine when it suppresses
};

struct FileTokens {
  std::vector<Tok> toks;
  std::vector<Suppression> sups;
};

/// Tokenize `content`. Comments, string bodies, and preprocessor lines are
/// consumed but not emitted; suppression comments are collected.
[[nodiscard]] FileTokens lex(const std::string& content);

}  // namespace dfv::lint
