// Rule engine for dfv-lint. Works on the token stream from lexer.cpp plus a
// lightweight scope model (namespace/class brace tracking) — deliberately no
// full C++ parse: every rule is a conservative pattern over tokens, with the
// `// dfv-lint: allow(rule): reason` escape hatch for the genuine idioms.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <unordered_set>
#include <vector>

#include "lexer.hpp"
#include "lint.hpp"

namespace dfv::lint {
namespace {

using Toks = std::vector<Tok>;

// ---------------------------------------------------------------------------
// Small token-stream helpers.

bool is(const Toks& t, std::size_t i, const char* text) {
  return i < t.size() && t[i].text == text;
}

bool is_id(const Toks& t, std::size_t i) { return i < t.size() && t[i].kind == TokKind::Id; }

/// Index of the punct matching `open` at t[i] (e.g. '(' -> ')'), or t.size().
std::size_t match(const Toks& t, std::size_t i, const char* open, const char* close) {
  int depth = 0;
  for (std::size_t j = i; j < t.size(); ++j) {
    if (t[j].text == open) ++depth;
    else if (t[j].text == close && --depth == 0) return j;
  }
  return t.size();
}

/// Skip an angle-bracket group starting at t[i] == "<". Returns the index
/// one past the matching ">". `>>` closes two levels. Heuristic (no
/// disambiguation against less-than), good enough for declaration contexts.
std::size_t skip_angles(const Toks& t, std::size_t i) {
  int depth = 0;
  for (std::size_t j = i; j < t.size(); ++j) {
    const std::string& x = t[j].text;
    if (x == "<") ++depth;
    else if (x == ">") {
      if (--depth == 0) return j + 1;
    } else if (x == ">>") {
      depth -= 2;
      if (depth <= 0) return j + 1;
    } else if (x == ";" || x == "{") {
      return j;  // ran off the declaration: not a template group after all
    }
  }
  return t.size();
}

const std::set<std::string>& specifier_set() {
  static const std::set<std::string> s = {
      "virtual", "static",   "inline", "constexpr", "consteval",
      "explicit", "extern",  "mutable", "constinit",
  };
  return s;
}

// ---------------------------------------------------------------------------
// Declaration parsing (for nodiscard / contract).

struct FuncDecl {
  bool is_func = false;
  bool is_static = false;
  bool is_deleted = false;
  bool is_noexcept = false;
  bool has_nodiscard = false;
  bool returns_value = false;  ///< non-void, non-reference return
  bool has_params = false;
  bool has_ptr_params = false;  ///< any parameter is a raw pointer
  std::string name;             ///< unqualified
  int name_line = 0;
};

/// Parse the statement tokens [begin, end) as a (possible) function
/// declaration or definition head. Conservative: anything that does not look
/// like a plain function (operators, destructors, function pointers,
/// friend/using/typedef statements) comes back with is_func = false.
FuncDecl parse_func(const Toks& t, std::size_t begin, std::size_t end) {
  FuncDecl d;
  std::size_t i = begin;
  // Strip template<...> prefixes, attributes, alignas, and specifiers.
  while (i < end) {
    if (is(t, i, "template") && is(t, i + 1, "<")) {
      i = skip_angles(t, i + 1);
    } else if (is(t, i, "[") && is(t, i + 1, "[")) {
      std::size_t close = i;
      int depth = 0;
      for (std::size_t j = i; j < end; ++j) {
        if (t[j].text == "[") ++depth;
        else if (t[j].text == "]" && --depth == 0) { close = j; break; }
      }
      for (std::size_t j = i; j < close; ++j)
        if (t[j].text == "nodiscard") d.has_nodiscard = true;
      i = close + 1;
      // `]]` is two `]` tokens; swallow the second if present.
      if (is(t, i, "]")) ++i;
    } else if (is(t, i, "alignas") && is(t, i + 1, "(")) {
      i = match(t, i + 1, "(", ")") + 1;
    } else if (is_id(t, i) && specifier_set().count(t[i].text)) {
      if (t[i].text == "static") d.is_static = true;
      ++i;
    } else {
      break;
    }
  }
  if (i >= end) return d;
  const std::string& head = t[i].text;
  if (head == "using" || head == "typedef" || head == "friend" || head == "namespace" ||
      head == "enum" || head == "class" || head == "struct" || head == "union" ||
      head == "static_assert" || head == "public" || head == "private" ||
      head == "protected" || head == "concept" || head == "requires")
    return d;
  // Find the parameter-list '(' at top level (outside any template args).
  std::size_t lparen = end;
  int angle = 0;
  for (std::size_t j = i; j < end; ++j) {
    const std::string& x = t[j].text;
    if (x == "<") ++angle;
    else if (x == ">") angle = std::max(0, angle - 1);
    else if (x == ">>") angle = std::max(0, angle - 2);
    else if (x == "(" && angle == 0) { lparen = j; break; }
    else if (x == "operator") return d;  // operators are exempt
    else if (x == "=" && angle == 0) return d;  // variable initializer
  }
  if (lparen == end || lparen == i) return d;
  if (!is_id(t, lparen - 1)) return d;  // function pointer / lambda / macro use
  std::size_t name_at = lparen - 1;
  if (name_at > begin && is(t, name_at - 1, "~")) return d;  // destructor
  d.name = t[name_at].text;
  d.name_line = t[name_at].line;
  // Strip `Qualifier::` pairs to find where the return type ends.
  std::size_t name_start = name_at;
  while (name_start >= i + 2 && is(t, name_start - 1, "::") && is_id(t, name_start - 2))
    name_start -= 2;
  const bool ctor_like = name_start == i;  // no return type: ctor (or macro)
  // Parameters.
  const std::size_t rparen = match(t, lparen, "(", ")");
  d.has_params =
      rparen > lparen + 1 && !(rparen == lparen + 2 && is(t, lparen + 1, "void"));
  for (std::size_t j = lparen + 1; j < rparen; ++j)
    if (t[j].text == "*") d.has_ptr_params = true;
  // Return type classification.
  if (!ctor_like) {
    std::size_t rbegin = i, rend = name_start;
    // Trailing return type wins if present.
    for (std::size_t j = rparen; j < end; ++j) {
      if (t[j].text == "->") { rbegin = j + 1; rend = end; break; }
    }
    bool is_void = (rend == rbegin + 1) && is(t, rbegin, "void");
    bool is_ref = rend > rbegin && (t[rend - 1].text == "&" || t[rend - 1].text == "&&");
    d.returns_value = rend > rbegin && !is_void && !is_ref;
  }
  for (std::size_t j = rparen; j < end; ++j) {
    if (t[j].text == "delete") d.is_deleted = true;
    if (t[j].text == "noexcept") d.is_noexcept = true;
  }
  d.is_func = !ctor_like || d.has_params;  // param-taking ctors count
  if (ctor_like) d.returns_value = false;
  return d;
}

// ---------------------------------------------------------------------------
// Scope walker: visits statements whose enclosing braces are all
// namespace/class scopes (i.e. declarations and definition heads, not
// statements inside function bodies).

struct ScopeStmt {
  std::size_t begin, end;  ///< declaration tokens [begin, end)
  bool has_body = false;
  std::size_t body_begin = 0, body_end = 0;  ///< indices of '{' and '}' tokens
  bool in_anon_namespace = false;
};

enum class BraceKind { Namespace, AnonNamespace, Class };

template <typename Fn>
void walk_scope_stmts(const Toks& t, Fn&& cb) {
  std::vector<BraceKind> stack;
  int anon_depth = 0;
  int paren_depth = 0;
  std::size_t stmt = 0;
  std::size_t i = 0;
  while (i < t.size()) {
    const std::string& x = t[i].text;
    if (x == "(") {
      ++paren_depth;
      ++i;
      continue;
    }
    if (x == ")") {
      paren_depth = std::max(0, paren_depth - 1);
      ++i;
      continue;
    }
    if (x == "{" && paren_depth > 0) {
      // Brace initializer inside a parameter list (`Params p = {}`): part of
      // the declaration, not a body.
      i = match(t, i, "{", "}") + 1;
      continue;
    }
    if (x == ";" && paren_depth > 0) {
      ++i;  // for(;;) style — not a declaration boundary
      continue;
    }
    if (x == ";") {
      cb(ScopeStmt{stmt, i, false, 0, 0, anon_depth > 0});
      stmt = ++i;
      continue;
    }
    if (x == ":" && i > 0 &&
        (is(t, i - 1, "public") || is(t, i - 1, "private") || is(t, i - 1, "protected"))) {
      stmt = ++i;
      continue;
    }
    if (x == "}") {
      if (!stack.empty()) {
        if (stack.back() == BraceKind::AnonNamespace) --anon_depth;
        stack.pop_back();
      }
      stmt = ++i;
      continue;
    }
    if (x != "{") {
      ++i;
      continue;
    }
    // Classify the '{' from the statement head.
    std::size_t h = stmt;
    bool has_paren = false;
    {
      int angle = 0;
      for (std::size_t j = stmt; j < i; ++j) {
        if (t[j].text == "<") ++angle;
        else if (t[j].text == ">") angle = std::max(0, angle - 1);
        else if (t[j].text == ">>") angle = std::max(0, angle - 2);
        else if (t[j].text == "(" && angle == 0) {
          if (j > stmt && is(t, j - 1, "alignas")) { j = match(t, j, "(", ")"); continue; }
          has_paren = true;
        }
      }
    }
    // Skip attributes / template prefix for the head keyword.
    while (h < i) {
      if (is(t, h, "template") && is(t, h + 1, "<")) h = skip_angles(t, h + 1);
      else if (is(t, h, "[")) {
        std::size_t c = match(t, h, "[", "]");
        h = c + 1;
        if (is(t, h, "]")) ++h;
      } else break;
    }
    const std::string head = h < i ? t[h].text : "";
    if (head == "namespace") {
      const bool anon = h + 1 == i;  // `namespace {`
      stack.push_back(anon ? BraceKind::AnonNamespace : BraceKind::Namespace);
      if (anon) ++anon_depth;
      stmt = ++i;
      continue;
    }
    if ((head == "class" || head == "struct" || head == "union") && !has_paren) {
      stack.push_back(BraceKind::Class);
      stmt = ++i;
      continue;
    }
    if (head == "enum") {  // jump the enumerator list
      i = match(t, i, "{", "}") + 1;
      stmt = i;
      continue;
    }
    // Function definition or brace initializer: emit with body and jump it.
    const std::size_t close = match(t, i, "{", "}");
    cb(ScopeStmt{stmt, i, true, i, close, anon_depth > 0});
    i = close + 1;
    stmt = i;
  }
}

// ---------------------------------------------------------------------------
// Path scoping.

bool starts_with(const std::string& s, const std::string& p) {
  return s.rfind(p, 0) == 0;
}
bool ends_with(const std::string& s, const std::string& p) {
  return s.size() >= p.size() && s.compare(s.size() - p.size(), p.size(), p) == 0;
}

// ---------------------------------------------------------------------------
// Rules: banned identifiers (no-rand, random-device, wall-clock).

/// True when t[i] is written as a member access (x.time, p->rand).
bool member_access(const Toks& t, std::size_t i) {
  return i > 0 && (t[i - 1].text == "." || t[i - 1].text == "->");
}

/// True when t[i] reads as a declaration of that name (`double time(...)`).
bool decl_position(const Toks& t, std::size_t i) {
  if (i == 0) return false;
  const std::string& p = t[i - 1].text;
  return t[i - 1].kind == TokKind::Id || p == ">" || p == "*" || p == "&" || p == "&&" ||
         p == "~";
}

/// Bare or std::-qualified use (not foo::time, not x.time, not a declaration).
bool bare_or_std(const Toks& t, std::size_t i) {
  if (member_access(t, i)) return false;
  if (i > 0 && t[i - 1].text == "::") return i >= 2 && t[i - 2].text == "std";
  return !decl_position(t, i);
}

void rule_banned_ids(const std::string& rel, const Toks& t, std::vector<Diagnostic>& out) {
  static const std::set<std::string> rand_fns = {
      "rand",   "srand",   "rand_r",  "drand48", "erand48", "lrand48",
      "nrand48", "mrand48", "jrand48", "random",  "srandom",
  };
  static const std::set<std::string> time_fns = {
      "time", "clock", "gettimeofday", "localtime", "localtime_r",
      "gmtime", "gmtime_r", "mktime", "ctime", "asctime",
  };
  const bool rng_home = starts_with(rel, "src/common/rng");
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::Id) continue;
    const std::string& x = t[i].text;
    if (rand_fns.count(x) && is(t, i + 1, "(") && bare_or_std(t, i)) {
      out.push_back({rel, t[i].line, "no-rand",
                     "'" + x + "' is nondeterministic; draw from dfv::Rng substreams "
                     "(common/rng.hpp) instead"});
    } else if (x == "random_device" && !rng_home) {
      out.push_back({rel, t[i].line, "random-device",
                     "std::random_device outside common/rng breaks run-to-run "
                     "reproducibility; seed through dfv::Rng"});
    } else if (x == "system_clock") {
      out.push_back({rel, t[i].line, "wall-clock",
                     "system_clock is wall-clock time; results must not depend on it "
                     "(steady_clock is fine for durations)"});
    } else if (time_fns.count(x) && is(t, i + 1, "(") && bare_or_std(t, i)) {
      out.push_back({rel, t[i].line, "wall-clock",
                     "'" + x + "' reads the wall clock; results must not depend on it"});
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: blocking-io (raw socket / mapped-file syscalls outside the
// audited wrappers).
//
// serve/protocol.cpp owns the only audited recv/send/connect call sites:
// its helpers add deadlines, EINTR handling, MSG_NOSIGNAL, and the typed
// failure taxonomy (PeerGone/Frame/Timeout). Likewise store/mmap_io.cpp
// owns the only audited mmap/pread/fdatasync sites: its RAII types keep
// mappings paired with munmap, retry EINTR, and turn short reads into
// ContractError. A bare syscall anywhere else silently reintroduces
// unbounded blocking, SIGPIPE exposure, or leaked mappings, so it is
// flagged; genuinely raw peers (chaos staging in tests) carry a reasoned
// `dfv-lint: allow(blocking-io)` suppression. `check_socket` is off under
// src/serve/ and `check_mmap` under src/store/ (each module's wrappers
// are the exemption, not the whole rule).

void rule_blocking_io(const std::string& rel, const Toks& t, bool check_socket,
                      bool check_mmap, std::vector<Diagnostic>& out) {
  static const std::set<std::string> socket_fns = {
      "recv", "send", "connect", "accept", "recvfrom", "sendto", "recvmsg", "sendmsg"};
  static const std::set<std::string> mmap_fns = {
      "mmap",   "munmap", "msync",     "mremap",    "madvise",
      "pread",  "pwrite", "ftruncate", "fdatasync", "fsync"};
  // Keywords that precede an *expression*, so an Id after one is a call,
  // not a declaration (`return connect(...)`), and `return ::send(...)`
  // is the global-qualified syscall, not `ns::send`.
  static const std::set<std::string> expr_keywords = {"return", "co_return", "throw",
                                                      "case",   "co_yield",  "co_await"};
  const auto is_type_like = [&](std::size_t j) {
    return t[j].kind == TokKind::Id && !expr_keywords.count(t[j].text);
  };
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::Id) continue;
    const bool is_socket = check_socket && socket_fns.count(t[i].text) > 0;
    const bool is_mmap = check_mmap && mmap_fns.count(t[i].text) > 0;
    if (!is_socket && !is_mmap) continue;
    if (!is(t, i + 1, "(")) continue;       // not a call
    if (member_access(t, i)) continue;      // x.send(...): a method, not the syscall
    if (i > 0 && t[i - 1].text == "::") {
      // `foo::connect` is namespace-scoped; bare `::connect` is the syscall.
      if (i >= 2 && is_type_like(i - 2)) continue;
    } else if (decl_position(t, i) && !(i > 0 && expr_keywords.count(t[i - 1].text))) {
      continue;                             // declaring a same-named function
    }
    out.push_back(
        {rel, t[i].line, "blocking-io",
         is_socket
             ? "raw '" + t[i].text +
                   "' outside src/serve: route socket I/O through the audited "
                   "serve/protocol wrappers (deadlines, EINTR, MSG_NOSIGNAL)"
             : "raw '" + t[i].text +
                   "' outside src/store: route mapped-file and positioned I/O "
                   "through the audited store/mmap_io wrappers (RAII unmap, "
                   "EINTR, exact-length reads)"});
  }
}

// ---------------------------------------------------------------------------
// Rule: unordered-iter.

void rule_unordered_iter(const std::string& rel, const Toks& t,
                         std::vector<Diagnostic>& out) {
  static const std::set<std::string> unordered = {
      "unordered_map", "unordered_set", "unordered_multimap", "unordered_multiset"};
  // Pass 1: names declared with an unordered container type.
  std::set<std::string> names;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!unordered.count(t[i].text)) continue;
    std::size_t j = i + 1;
    if (is(t, j, "<")) j = skip_angles(t, j);
    while (is(t, j, "&") || is(t, j, "*") || is(t, j, "const")) ++j;
    if (is_id(t, j) && !is(t, j + 1, "(")) names.insert(t[j].text);
  }
  if (names.empty()) return;
  auto flag = [&](int line, const std::string& name) {
    out.push_back({rel, line, "unordered-iter",
                   "iteration order of unordered container '" + name +
                       "' is implementation-defined; sort before the data escapes "
                       "into results"});
  };
  // Pass 2: range-for over such a name, or explicit .begin()/.cbegin().
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (is(t, i, "for") && is(t, i + 1, "(")) {
      const std::size_t rp = match(t, i + 1, "(", ")");
      std::size_t colon = rp;
      int depth = 0;
      for (std::size_t j = i + 1; j < rp; ++j) {
        if (t[j].text == "(") ++depth;
        else if (t[j].text == ")") --depth;
        else if (t[j].text == ":" && depth == 1) { colon = j; break; }
      }
      for (std::size_t j = colon + 1; j < rp; ++j)
        if (is_id(t, j) && names.count(t[j].text)) { flag(t[i].line, t[j].text); break; }
    } else if (is_id(t, i) && names.count(t[i].text) && is(t, i + 1, ".") &&
               (is(t, i + 2, "begin") || is(t, i + 2, "cbegin")) && is(t, i + 3, "(")) {
      flag(t[i].line, t[i].text);
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: parallel-mutate.

/// Collect names declared inside a token range (statement-level heuristic:
/// `[const] Type[<...>] [&*] name [= ...]`, `auto [a, b] = ...`, for-inits).
void collect_local_decls(const Toks& t, std::size_t begin, std::size_t end,
                         std::set<std::string>& locals) {
  static const std::set<std::string> not_types = {
      "return", "if", "else", "for", "while", "do", "switch", "case", "break",
      "continue", "goto", "throw", "new", "delete", "using", "typedef", "sizeof",
      "co_return", "co_await", "co_yield", "else"};
  std::size_t s = begin;  // statement start
  for (std::size_t i = begin; i <= end; ++i) {
    const bool boundary = i == end || t[i].text == ";" || t[i].text == "{" ||
                          t[i].text == "}" ||
                          (t[i].text == "(" && i > begin && is(t, i - 1, "for"));
    if (!boundary) continue;
    // Try to parse [s, i) as a declaration.
    std::size_t j = s;
    while (is(t, j, "const") || is(t, j, "static") || is(t, j, "constexpr")) ++j;
    if (j < i && is_id(t, j) && !not_types.count(t[j].text)) {
      std::size_t k = j + 1;
      while (is(t, k, "::") && is_id(t, k + 1)) k += 2;
      if (is(t, k, "<")) k = skip_angles(t, k);
      while (is(t, k, "&") || is(t, k, "*") || is(t, k, "const") || is(t, k, "&&")) ++k;
      if (is(t, k, "[")) {  // structured binding: auto [a, b] = ...
        const std::size_t close = match(t, k, "[", "]");
        for (std::size_t m = k + 1; m < close && m < i; ++m)
          if (is_id(t, m)) locals.insert(t[m].text);
      } else if (is_id(t, k) && k + 1 <= i &&
                 (k + 1 == i || t[k + 1].text == "=" || t[k + 1].text == ";" ||
                  t[k + 1].text == "{" || t[k + 1].text == "(" || t[k + 1].text == ",")) {
        locals.insert(t[k].text);
        // Extra declarators: `int a = 1, b = 2;`
        int depth = 0;
        for (std::size_t m = k + 1; m < i; ++m) {
          const std::string& x = t[m].text;
          if (x == "(" || x == "[" || x == "{") ++depth;
          else if (x == ")" || x == "]" || x == "}") --depth;
          else if (x == "," && depth == 0 && is_id(t, m + 1)) locals.insert(t[m + 1].text);
        }
      }
    }
    s = i + 1;
  }
}

void rule_parallel_mutate(const std::string& rel, const Toks& t,
                          std::vector<Diagnostic>& out) {
  static const std::set<std::string> parallel_fns = {"parallel_for", "parallel_map",
                                                     "parallel_reduce"};
  static const std::set<std::string> mutators = {
      "push_back", "emplace_back", "pop_back", "insert", "emplace", "emplace_hint",
      "erase", "clear", "resize", "assign", "reserve"};
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!is_id(t, i) || !parallel_fns.count(t[i].text)) continue;
    std::size_t call = i + 1;
    if (is(t, call, "<")) call = skip_angles(t, call);
    if (!is(t, call, "(")) continue;
    const std::size_t args_end = match(t, call, "(", ")");
    // Find lambda bodies inside the argument list.
    for (std::size_t j = call + 1; j < args_end; ++j) {
      if (!is(t, j, "[")) continue;
      if (!(is(t, j - 1, "(") || is(t, j - 1, ","))) continue;  // not a lambda intro
      const std::size_t cap_end = match(t, j, "[", "]");
      std::size_t k = cap_end + 1;
      std::set<std::string> locals;
      if (is(t, k, "(")) {  // parameter list
        const std::size_t pe = match(t, k, "(", ")");
        int depth = 0;
        std::size_t seg_last_id = 0;
        bool have_id = false, in_default = false;
        for (std::size_t m = k + 1; m <= pe; ++m) {
          const std::string& x = t[m].text;
          if (x == "(" || x == "[" || x == "{" || x == "<") ++depth;
          else if (x == "]" || x == "}" || x == ">" || (x == ")" && m != pe)) --depth;
          else if (depth == 0 && x == "=") in_default = true;
          else if (depth == 0 && (x == "," || m == pe)) {
            if (have_id) locals.insert(t[seg_last_id].text);
            have_id = false;
            in_default = false;
          } else if (depth == 0 && !in_default && t[m].kind == TokKind::Id) {
            seg_last_id = m;
            have_id = true;
          }
        }
        k = pe + 1;
      }
      while (k < args_end && !is(t, k, "{") && !is(t, k, ",") && !is(t, k, ")")) ++k;
      if (!is(t, k, "{")) continue;
      const std::size_t body_end = match(t, k, "{", "}");
      collect_local_decls(t, k + 1, body_end, locals);
      // Flag mutating member calls whose base is not lambda-local.
      for (std::size_t m = k + 1; m < body_end; ++m) {
        if (!is_id(t, m) || !mutators.count(t[m].text)) continue;
        if (!is(t, m + 1, "(")) continue;
        if (m == 0 || (t[m - 1].text != "." && t[m - 1].text != "->")) continue;
        // Walk back over `base(.mid)*` to the chain base.
        std::size_t b = m - 2;
        while (b >= 2 && is_id(t, b) && (t[b - 1].text == "." || t[b - 1].text == "->"))
          b -= 2;
        if (!is_id(t, b)) continue;  // element access like out[i].push_back: fine
        // A `)` before the base is a control-flow paren (`for (...) v.push_back`),
        // never a chain: chains land the walk on punctuation, caught above.
        if (b > 0 && (t[b - 1].text == "]" || t[b - 1].text == "." ||
                      t[b - 1].text == "->"))
          continue;
        const std::string& base = t[b].text;
        if (base == "this" || locals.count(base)) continue;
        out.push_back({rel, t[m].line, "parallel-mutate",
                       "'" + base + "." + t[m].text +
                           "' mutates captured state inside an exec::parallel_* body; "
                           "use per-chunk slots or a documented arena idiom"});
      }
      j = body_end;
    }
    i = call;
  }
}

// ---------------------------------------------------------------------------
// Rule: narrow.

const std::set<std::string>& narrow_targets() {
  // Integral types narrower than the tree's working widths. Plain char
  // variants are excluded (the <cctype> `unsigned char` idiom is fine);
  // data narrowing in this codebase uses the fixed-width names.
  static const std::set<std::string> s = {
      "int",      "short",    "unsigned short", "unsigned", "unsigned int",
      "int8_t",   "int16_t",  "int32_t",        "uint8_t",  "uint16_t",
      "uint32_t",
  };
  return s;
}

/// Join tokens [b, e) into a canonical type name, dropping std:: and const.
std::string type_name(const Toks& t, std::size_t b, std::size_t e) {
  std::string s;
  for (std::size_t i = b; i < e; ++i) {
    if (t[i].text == "std" || t[i].text == "::" || t[i].text == "const") continue;
    if (!s.empty()) s += ' ';
    s += t[i].text;
  }
  return s;
}

void rule_narrow(const std::string& rel, const Toks& t, std::vector<Diagnostic>& out) {
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (is(t, i, "static_cast") && is(t, i + 1, "<")) {
      const std::size_t close = skip_angles(t, i + 1);
      if (close == t.size() || !is(t, close, "(")) continue;
      const std::string ty = type_name(t, i + 2, close - 1);
      if (narrow_targets().count(ty))
        out.push_back({rel, t[i].line, "narrow",
                       "static_cast to narrow integral '" + ty +
                           "': use DFV_NARROW (checked) or dfv::enum_int for enums"});
      i = close;
    } else if (i + 2 < t.size() && is(t, i, "(")) {
      // C-style cast: `(int) expr` — type tokens only inside the parens.
      std::size_t j = i + 1;
      while (j < t.size() && (is_id(t, j) || t[j].text == "::")) ++j;
      if (!is(t, j, ")") || j == i + 1) continue;
      const Tok& after = t[j + 1 < t.size() ? j + 1 : j];
      const bool expr_follows = after.kind == TokKind::Id || after.kind == TokKind::Num ||
                                after.text == "(";
      const bool call_ctx = i > 0 && (t[i - 1].kind == TokKind::Id ||
                                      t[i - 1].text == ")" || t[i - 1].text == "]" ||
                                      t[i - 1].text == ">");
      const std::string ty = type_name(t, i + 1, j);
      if (expr_follows && !call_ctx && narrow_targets().count(ty))
        out.push_back({rel, t[i].line, "narrow",
                       "C-style cast to narrow integral '" + ty +
                           "': use DFV_NARROW (checked) or dfv::enum_int for enums"});
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: nodiscard (public src/ headers).

void rule_nodiscard(const std::string& rel, const Toks& t, std::vector<Diagnostic>& out) {
  walk_scope_stmts(t, [&](const ScopeStmt& s) {
    const FuncDecl d = parse_func(t, s.begin, s.end);
    if (!d.is_func || !d.returns_value || d.has_nodiscard || d.is_deleted) return;
    if (d.name == "main") return;
    out.push_back({rel, d.name_line, "nodiscard",
                   "value-returning public function '" + d.name +
                       "' should be [[nodiscard]] (ignoring the result is a bug)"});
  });
}

// ---------------------------------------------------------------------------
// Rule: contract (public entry points in src/{analysis,ml,sim}/*.cpp).

void rule_contract(const std::string& rel, const Toks& t, const std::string& header,
                   std::vector<Diagnostic>& out) {
  if (header.empty()) return;
  // Names declared in the sibling header (over-approximate: any id before '(').
  std::set<std::string> public_names;
  {
    const FileTokens h = lex(header);
    for (std::size_t i = 0; i + 1 < h.toks.size(); ++i)
      if (h.toks[i].kind == TokKind::Id && h.toks[i + 1].text == "(")
        public_names.insert(h.toks[i].text);
  }
  walk_scope_stmts(t, [&](const ScopeStmt& s) {
    if (!s.has_body || s.in_anon_namespace) return;
    const FuncDecl d = parse_func(t, s.begin, s.end);
    if (!d.is_func || d.is_static || !d.has_params) return;
    if (!public_names.count(d.name)) return;
    if (starts_with(d.name, "to_string")) return;
    // noexcept entry points cannot throw ContractError; their inputs must be
    // validated at the nearest throwing boundary instead.
    if (d.is_noexcept) return;
    // Raw-pointer kernels sit below the contract boundary: the value-typed
    // Matrix/RowBatch/span layer above them owns the shape checks.
    if (d.has_ptr_params) return;
    // Trivial forwards (fewer than two statements) are exempt.
    int stmts = 0;
    bool checked = false;
    for (std::size_t j = s.body_begin; j <= s.body_end && j < t.size(); ++j) {
      if (t[j].text == ";") ++stmts;
      if (t[j].kind == TokKind::Id &&
          (t[j].text == "DFV_CHECK" || t[j].text == "DFV_CHECK_MSG" ||
           t[j].text == "validate"))
        checked = true;
    }
    if (stmts < 2 || checked) return;
    out.push_back({rel, d.name_line, "contract",
                   "public entry point '" + d.name +
                       "' does not validate its inputs; add DFV_CHECK*/validate() "
                       "or delegate to a checked overload"});
  });
}

// ---------------------------------------------------------------------------
// Suppressions + meta rules, and the per-file driver.

bool known_rule(const std::string& id) {
  for (const RuleInfo& r : rule_catalog())
    if (id == r.id) return true;
  return false;
}

}  // namespace

const std::vector<RuleInfo>& rule_catalog() {
  static const std::vector<RuleInfo> rules = {
      {"no-rand", "banned nondeterministic RNG (std::rand, *rand48, random, ...)"},
      {"random-device", "std::random_device outside src/common/rng"},
      {"wall-clock", "wall-clock reads (system_clock, time(), localtime, ...)"},
      {"unordered-iter", "iteration over unordered containers (nondeterministic order)"},
      {"parallel-mutate", "mutating captured state inside exec::parallel_* bodies"},
      {"contract",
       "public analysis/ml/sim/store entry points must DFV_CHECK their inputs"},
      {"narrow", "narrow integral casts must use DFV_NARROW / dfv::enum_int"},
      {"nodiscard", "value-returning functions in public headers need [[nodiscard]]"},
      {"blocking-io",
       "raw socket syscalls (recv/send/...) outside the audited src/serve "
       "wrappers; raw mapped-file syscalls (mmap/pread/...) outside src/store"},
      {"allow-reason", "suppression comments must explain why (meta)"},
      {"unused-allow", "suppression comments must actually suppress something (meta)"},
      {"unknown-rule", "suppression names a rule that does not exist (meta)"},
  };
  return rules;
}

std::vector<Diagnostic> lint_file(const std::string& rel_path, const std::string& content,
                                  const std::string& header_content) {
  FileTokens ft = lex(content);
  std::vector<Diagnostic> raw;

  rule_banned_ids(rel_path, ft.toks, raw);
  rule_unordered_iter(rel_path, ft.toks, raw);
  rule_parallel_mutate(rel_path, ft.toks, raw);
  {
    const bool check_socket = !starts_with(rel_path, "src/serve/");
    const bool check_mmap = !starts_with(rel_path, "src/store/");
    if (check_socket || check_mmap)
      rule_blocking_io(rel_path, ft.toks, check_socket, check_mmap, raw);
  }
  if (starts_with(rel_path, "src/") || starts_with(rel_path, "tools/"))
    rule_narrow(rel_path, ft.toks, raw);
  if (starts_with(rel_path, "src/") && ends_with(rel_path, ".hpp"))
    rule_nodiscard(rel_path, ft.toks, raw);
  if (ends_with(rel_path, ".cpp") &&
      (starts_with(rel_path, "src/analysis/") || starts_with(rel_path, "src/ml/") ||
       starts_with(rel_path, "src/sim/") || starts_with(rel_path, "src/api/") ||
       starts_with(rel_path, "src/serve/") || starts_with(rel_path, "src/store/")))
    rule_contract(rel_path, ft.toks, header_content, raw);

  // Apply suppressions: an allow on line L covers lines L and L+1.
  std::vector<Diagnostic> kept;
  for (Diagnostic& d : raw) {
    bool suppressed = false;
    for (Suppression& s : ft.sups) {
      if (s.line != d.line && s.line + 1 != d.line) continue;
      if (std::find(s.rules.begin(), s.rules.end(), d.rule) == s.rules.end()) continue;
      s.used = true;
      suppressed = true;
      break;
    }
    if (!suppressed) kept.push_back(std::move(d));
  }
  // Meta rules (not suppressible by design).
  for (const Suppression& s : ft.sups) {
    bool all_known = true;
    for (const std::string& r : s.rules)
      if (!known_rule(r)) {
        all_known = false;
        kept.push_back({rel_path, s.line, "unknown-rule",
                        "suppression names unknown rule '" + r + "'"});
      }
    if (!s.has_reason)
      kept.push_back({rel_path, s.line, "allow-reason",
                      "suppression has no justification; write "
                      "`dfv-lint: allow(rule): why it is safe`"});
    if (all_known && !s.used)
      kept.push_back({rel_path, s.line, "unused-allow",
                      "suppression did not match any diagnostic; remove it"});
  }
  std::sort(kept.begin(), kept.end(), [](const Diagnostic& a, const Diagnostic& b) {
    return std::tie(a.line, a.rule) < std::tie(b.line, b.rule);
  });
  return kept;
}

std::vector<Diagnostic> lint_tree(const std::string& root,
                                  const std::vector<std::string>& paths) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  const std::vector<std::string> defaults = {"src", "tools", "tests", "bench"};
  for (const std::string& p : paths.empty() ? defaults : paths) {
    const fs::path base = fs::path(root) / p;
    if (fs::is_regular_file(base)) {
      files.push_back(p);
      continue;
    }
    if (!fs::is_directory(base)) continue;
    for (const auto& e : fs::recursive_directory_iterator(base)) {
      if (!e.is_regular_file()) continue;
      const std::string rel = fs::relative(e.path(), root).generic_string();
      if (rel.find("lint_fixtures") != std::string::npos) continue;
      if (ends_with(rel, ".hpp") || ends_with(rel, ".cpp")) files.push_back(rel);
    }
  }
  std::sort(files.begin(), files.end());
  std::vector<Diagnostic> all;
  for (const std::string& rel : files) {
    std::ifstream in(fs::path(root) / rel);
    std::stringstream ss;
    ss << in.rdbuf();
    std::string header;
    if (ends_with(rel, ".cpp")) {
      const fs::path hp = (fs::path(root) / rel).replace_extension(".hpp");
      if (fs::exists(hp)) {
        std::ifstream hin(hp);
        std::stringstream hs;
        hs << hin.rdbuf();
        header = hs.str();
      }
    }
    std::vector<Diagnostic> d = lint_file(rel, ss.str(), header);
    all.insert(all.end(), d.begin(), d.end());
  }
  return all;
}

}  // namespace dfv::lint
