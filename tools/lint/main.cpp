// dfv-lint command-line driver.
//
//   dfv-lint [--root DIR] [--counts] [--list-rules] [paths...]
//
// Lints .hpp/.cpp files under the given repo-relative paths (default:
// src tools tests bench), prints clang-style diagnostics, and exits
// non-zero if any violation is found. `--counts` appends a per-rule
// summary (consumed by scripts/lint.sh).
#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "lint.hpp"

int main(int argc, char** argv) {
  std::string root = ".";
  bool counts = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
    } else if (arg == "--counts") {
      counts = true;
    } else if (arg == "--list-rules") {
      for (const auto& r : dfv::lint::rule_catalog())
        std::cout << r.id << "\t" << r.summary << "\n";
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: dfv-lint [--root DIR] [--counts] [--list-rules] [paths...]\n"
                << "lints .hpp/.cpp under repo-relative paths (default: src tools "
                   "tests bench)\n";
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "dfv-lint: unknown flag '" << arg << "'\n";
      return 2;
    } else {
      paths.push_back(arg);
    }
  }

  const std::vector<dfv::lint::Diagnostic> diags = dfv::lint::lint_tree(root, paths);
  for (const auto& d : diags)
    std::cout << d.file << ":" << d.line << ": error: [" << d.rule << "] " << d.message
              << "\n";
  if (counts) {
    std::map<std::string, int> per_rule;
    for (const auto& d : diags) ++per_rule[d.rule];
    for (const auto& r : dfv::lint::rule_catalog())
      std::cout << "count\t" << r.id << "\t"
                << (per_rule.count(r.id) ? per_rule.at(r.id) : 0) << "\n";
  }
  if (!diags.empty()) {
    std::cout << "dfv-lint: " << diags.size() << " violation"
              << (diags.size() == 1 ? "" : "s") << "\n";
    return 1;
  }
  return 0;
}
