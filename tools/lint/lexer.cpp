#include "lexer.hpp"

#include <cctype>

namespace dfv::lint {
namespace {

bool id_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool id_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

/// Multi-character punctuation, longest-match-first.
const char* const kMultiPunct[] = {
    "<<=", ">>=", "...", "->*", "::", "->", "<<", ">>", "<=", ">=", "==", "!=",
    "&&",  "||",  "+=",  "-=",  "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
    ".*",
};

/// Parse a `dfv-lint: allow(rule[,rule...])[: reason]` comment body. The
/// directive must start the comment (directly after the `//`), so prose that
/// merely mentions the syntax is not a directive.
bool parse_allow(const std::string& comment, int line, std::vector<Suppression>& out) {
  const std::string marker = "dfv-lint:";
  std::size_t at = 2;  // skip the leading "//"
  while (at < comment.size() && std::isspace(static_cast<unsigned char>(comment[at]))) ++at;
  if (comment.compare(at, marker.size(), marker) != 0) return false;
  std::size_t i = at + marker.size();
  while (i < comment.size() && std::isspace(static_cast<unsigned char>(comment[i]))) ++i;
  const std::string verb = "allow";
  if (comment.compare(i, verb.size(), verb) != 0) return false;
  i += verb.size();
  while (i < comment.size() && std::isspace(static_cast<unsigned char>(comment[i]))) ++i;
  if (i >= comment.size() || comment[i] != '(') return false;
  ++i;
  Suppression sup;
  sup.line = line;
  std::string rule;
  for (; i < comment.size() && comment[i] != ')'; ++i) {
    const char c = comment[i];
    if (c == ',') {
      if (!rule.empty()) sup.rules.push_back(rule);
      rule.clear();
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      rule.push_back(c);
    }
  }
  if (!rule.empty()) sup.rules.push_back(rule);
  if (i < comment.size()) ++i;  // ')'
  // A reason is any non-trivial text after the closing paren (conventionally
  // introduced with ':').
  std::size_t reason_chars = 0;
  for (; i < comment.size(); ++i) {
    const char c = comment[i];
    if (!std::isspace(static_cast<unsigned char>(c)) && c != ':' && c != '-') ++reason_chars;
  }
  sup.has_reason = reason_chars >= 3;
  out.push_back(sup);
  return true;
}

}  // namespace

FileTokens lex(const std::string& content) {
  FileTokens ft;
  const std::size_t n = content.size();
  std::size_t i = 0;
  int line = 1;
  bool line_has_code = false;  // tracks "only whitespace so far on this line"

  auto newline = [&] {
    ++line;
    line_has_code = false;
  };

  while (i < n) {
    const char c = content[i];
    if (c == '\n') {
      newline();
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Preprocessor directive: consume the logical line (with \-continuations).
    if (c == '#' && !line_has_code) {
      while (i < n) {
        if (content[i] == '\\' && i + 1 < n && content[i + 1] == '\n') {
          newline();
          i += 2;
          continue;
        }
        if (content[i] == '\n') break;
        ++i;
      }
      line_has_code = true;
      continue;
    }
    line_has_code = true;
    // Line comment — may carry a suppression directive.
    if (c == '/' && i + 1 < n && content[i + 1] == '/') {
      const std::size_t start = i;
      while (i < n && content[i] != '\n') ++i;
      parse_allow(content.substr(start, i - start), line, ft.sups);
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && content[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(content[i] == '*' && content[i + 1] == '/')) {
        if (content[i] == '\n') newline();
        ++i;
      }
      i = (i + 1 < n) ? i + 2 : n;
      continue;
    }
    // Raw string literal R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && content[i + 1] == '"') {
      std::size_t j = i + 2;
      std::string delim;
      while (j < n && content[j] != '(') delim.push_back(content[j++]);
      const std::string close = ")" + delim + "\"";
      std::size_t end = content.find(close, j);
      if (end == std::string::npos) end = n;
      for (std::size_t k = i; k < end && k < n; ++k)
        if (content[k] == '\n') newline();
      ft.toks.push_back({TokKind::Str, "R\"...\"", line});
      i = (end == n) ? n : end + close.size();
      continue;
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      const char quote = c;
      const int start_line = line;
      ++i;
      while (i < n && content[i] != quote) {
        if (content[i] == '\\' && i + 1 < n) ++i;
        if (content[i] == '\n') newline();
        ++i;
      }
      if (i < n) ++i;  // closing quote
      ft.toks.push_back({TokKind::Str, quote == '"' ? "\"...\"" : "'...'", start_line});
      continue;
    }
    if (id_start(c)) {
      std::size_t j = i;
      while (j < n && id_char(content[j])) ++j;
      ft.toks.push_back({TokKind::Id, content.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n && std::isdigit(static_cast<unsigned char>(content[i + 1])))) {
      std::size_t j = i;
      // pp-number: digits, letters, dots, quotes-as-separators, exponent signs.
      while (j < n && (id_char(content[j]) || content[j] == '.' || content[j] == '\'' ||
                       ((content[j] == '+' || content[j] == '-') && j > i &&
                        (content[j - 1] == 'e' || content[j - 1] == 'E' ||
                         content[j - 1] == 'p' || content[j - 1] == 'P'))))
        ++j;
      ft.toks.push_back({TokKind::Num, content.substr(i, j - i), line});
      i = j;
      continue;
    }
    // Punctuation: longest multi-char match first.
    bool matched = false;
    for (const char* op : kMultiPunct) {
      const std::size_t len = std::char_traits<char>::length(op);
      if (content.compare(i, len, op) == 0) {
        ft.toks.push_back({TokKind::Punct, op, line});
        i += len;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    ft.toks.push_back({TokKind::Punct, std::string(1, c), line});
    ++i;
  }
  return ft;
}

}  // namespace dfv::lint
