// dfv-lint — project-native static analysis for the dragonfly-variability
// tree. Enforces the determinism, contract, and API-hygiene invariants that
// the runtime bit-identity tests can only catch late (or not at all):
//
//   no-rand          banned nondeterministic RNG (std::rand, *rand48, ...)
//   random-device    std::random_device outside src/common/rng.*
//   wall-clock       wall-clock reads (system_clock, time(), localtime, ...)
//                    — steady_clock is allowed (duration-only, not a result)
//   unordered-iter   iterating an unordered container (order is
//                    implementation-defined; sort before data escapes)
//   parallel-mutate  mutating captured (shared) state inside an
//                    exec::parallel_* body outside the arena/slot idioms
//   contract         public entry points in analysis/ml/sim must validate
//                    inputs via DFV_CHECK* (or delegate to .validate())
//   narrow           casts to narrow integral types must go through
//                    DFV_NARROW / dfv::narrow_cast (or enum_int for enums)
//   nodiscard        value-returning functions in public src/ headers must
//                    be [[nodiscard]]
//
// Meta rules (not suppressible):
//   allow-reason     a `dfv-lint: allow(...)` without a justification
//   unused-allow     a suppression that suppressed nothing
//   unknown-rule     a suppression naming a rule that does not exist
//
// Suppression syntax, on the offending line or the line before it:
//   // dfv-lint: allow(rule-id): why this is safe
#pragma once

#include <string>
#include <vector>

namespace dfv::lint {

struct Diagnostic {
  std::string file;  ///< path as passed in (repo-relative in normal runs)
  int line = 0;
  std::string rule;
  std::string message;
};

struct RuleInfo {
  const char* id;
  const char* summary;
};

/// Catalog of every rule (including meta rules), for --list-rules and docs.
[[nodiscard]] const std::vector<RuleInfo>& rule_catalog();

/// Lint one file. `rel_path` is the path relative to the repo root (used for
/// path-scoped rules) and is the path reported in diagnostics.
/// `header_content` is the text of the sibling header for .cpp files in
/// contract-scoped directories (empty if none) — used to decide which
/// function definitions are public entry points.
[[nodiscard]] std::vector<Diagnostic> lint_file(const std::string& rel_path,
                                                const std::string& content,
                                                const std::string& header_content = {});

/// Walk `root`'s source dirs (src, tools, tests, bench by default; or the
/// given relative paths), lint every .hpp/.cpp, and return all diagnostics
/// sorted by (file, line). Directories named lint_fixtures are skipped.
[[nodiscard]] std::vector<Diagnostic> lint_tree(const std::string& root,
                                                const std::vector<std::string>& paths);

}  // namespace dfv::lint
