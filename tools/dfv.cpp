// dfv — command-line driver for the dragonfly-variability library.
//
//   dfv topology  [--groups N]
//   dfv campaign  [--days N] [--cache DIR] [--out DIR]
//   dfv blame     --app APP --nodes N [--tau X] [--cache DIR]
//   dfv deviation --app APP --nodes N [--cache DIR]
//   dfv forecast  --app APP --nodes N --m M --k K [--features FS] [--cache DIR]
//   dfv simulate  [--pattern P] [--policy P] [--load X] [--groups N] [--vc]
//
// Every analysis subcommand generates (or loads) the canonical campaign
// into the cache directory, so the first invocation takes a few minutes
// and subsequent ones are instant.
#include <cstring>
#include <iostream>
#include <map>
#include <string>

#include "analysis/forecast.hpp"
#include "analysis/neighborhood.hpp"
#include "apps/registry.hpp"
#include "common/ascii_plot.hpp"
#include "common/log.hpp"
#include "common/table.hpp"
#include "core/study.hpp"
#include "net/packet_sim.hpp"
#include "net/vc_sim.hpp"

namespace {

using namespace dfv;

struct Args {
  std::map<std::string, std::string> kv;

  [[nodiscard]] std::string get(const std::string& key, const std::string& dflt) const {
    const auto it = kv.find(key);
    return it == kv.end() ? dflt : it->second;
  }
  [[nodiscard]] int get_int(const std::string& key, int dflt) const {
    const auto it = kv.find(key);
    return it == kv.end() ? dflt : std::stoi(it->second);
  }
  [[nodiscard]] double get_double(const std::string& key, double dflt) const {
    const auto it = kv.find(key);
    return it == kv.end() ? dflt : std::stod(it->second);
  }
};

Args parse(int argc, char** argv, int from) {
  Args a;
  for (int i = from; i + 1 < argc; i += 2) {
    std::string key = argv[i];
    if (key.rfind("--", 0) == 0) key = key.substr(2);
    a.kv[key] = argv[i + 1];
  }
  return a;
}

core::VariabilityStudy make_study(const Args& a) {
  sim::CampaignConfig cfg;
  cfg.seed = 20181203;
  cfg.days = a.get_int("days", cfg.days);
  return core::VariabilityStudy(cfg, a.get("cache", "dfv_cache"));
}

int cmd_topology(const Args& a) {
  net::DragonflyConfig cfg = net::DragonflyConfig::cori();
  if (a.kv.count("groups")) cfg = net::DragonflyConfig::small(a.get_int("groups", 4));
  std::cout << net::Topology(cfg).describe();
  return 0;
}

int cmd_campaign(const Args& a) {
  set_log_level(LogLevel::Info);
  auto study = make_study(a);
  const auto& result = study.campaign();
  Table t({"dataset", "runs", "steps/run"});
  for (const auto& ds : result.datasets)
    t.add_row({ds.spec.label(), std::to_string(ds.num_runs()),
               std::to_string(ds.steps_per_run())});
  std::cout << t.str();
  if (a.kv.count("out")) {
    for (const auto& ds : result.datasets) {
      const std::string path = a.get("out", ".") + "/" + ds.spec.label() + ".csv";
      std::cout << (sim::save_dataset(ds, path) ? "wrote " : "FAILED to write ") << path
                << "\n";
    }
  }
  return 0;
}

int cmd_blame(const Args& a) {
  auto study = make_study(a);
  const auto res = study.neighborhood(a.get("app", "MILC"), a.get_int("nodes", 128),
                                      a.get_double("tau", 1.0));
  Table t({"user", "MI (nats)", "present in runs", "P(optimal|present)", "P(optimal)"});
  for (const auto& s : res.ranked) {
    if (s.mi < 1e-4) break;
    t.add_row({"User-" + std::to_string(s.user_id), format_double(s.mi, 4),
               format_double(100.0 * s.presence, 1) + "%",
               format_double(s.optimal_when_present, 2),
               format_double(s.optimal_overall, 2)});
  }
  std::cout << t.str();
  return 0;
}

int cmd_deviation(const Args& a) {
  auto study = make_study(a);
  const auto res = study.deviation(a.get("app", "MILC"), a.get_int("nodes", 128));
  std::vector<std::string> labels;
  for (int c = 0; c < mon::kNumCounters; ++c)
    labels.emplace_back(mon::counter_name(mon::counter_from_index(c)));
  std::cout << bar_chart(labels, res.survival, 48, "RFE survival relevance");
  std::cout << "\nGBR CV MAPE: " << format_double(res.cv_mape, 2)
            << "%   linear baseline: " << format_double(res.cv_mape_linear, 2) << "%\n";
  return 0;
}

int cmd_forecast(const Args& a) {
  auto study = make_study(a);
  const std::string fs_name = a.get("features", "app");
  analysis::FeatureSet fs = analysis::FeatureSet::App;
  for (auto cand : {analysis::FeatureSet::App, analysis::FeatureSet::AppPlacement,
                    analysis::FeatureSet::AppPlacementIo,
                    analysis::FeatureSet::AppPlacementIoSys})
    if (fs_name == analysis::to_string(cand)) fs = cand;
  const analysis::WindowConfig wcfg{a.get_int("m", 10), a.get_int("k", 20), fs};
  const auto eval =
      study.forecast(a.get("app", "MILC"), a.get_int("nodes", 128), wcfg);
  Table t({"model", "MAPE (%)"});
  t.add_row({"attention", format_double(eval.mape_attention, 2)});
  t.add_row({"persistence", format_double(eval.mape_persistence, 2)});
  t.add_row({"dataset mean", format_double(eval.mape_mean, 2)});
  std::cout << t.str();
  return 0;
}

int cmd_simulate(const Args& a) {
  net::DragonflyConfig cfg = net::DragonflyConfig::small(a.get_int("groups", 6));
  const net::Topology topo(cfg);
  net::TrafficPattern pattern = net::TrafficPattern::Uniform;
  if (a.get("pattern", "uniform") == "adversarial")
    pattern = net::TrafficPattern::AdversarialShift;
  else if (a.get("pattern", "uniform") == "hotspot")
    pattern = net::TrafficPattern::Hotspot;
  net::RoutingPolicy policy = net::RoutingPolicy::Ugal;
  if (a.get("policy", "ugal") == "minimal") policy = net::RoutingPolicy::Minimal;
  else if (a.get("policy", "ugal") == "valiant") policy = net::RoutingPolicy::Valiant;
  const double load = a.get_double("load", 0.3);
  const int packets = a.get_int("packets", 300);

  Table t({"engine", "mean latency (us)", "p99 (us)", "mean hops", "throughput (GB/s)"});
  {
    net::PacketSimParams params;
    params.policy = policy;
    net::PacketSim sim(topo, params, 1);
    const auto s = sim.run_synthetic(pattern, load, packets);
    t.add_row({"source-routed", format_double(s.mean_latency * 1e6, 2),
               format_double(s.p99_latency * 1e6, 2), format_double(s.mean_hops, 2),
               format_double(s.throughput / 1e9, 2)});
  }
  {
    net::VcSimParams params;
    params.policy = policy;
    net::VcPacketSim sim(topo, params, 1);
    const auto s = sim.run_synthetic(pattern, load, packets);
    t.add_row({std::string("credit/VC") + (s.deadlocked ? " [DEADLOCK]" : ""),
               format_double(s.mean_latency * 1e6, 2),
               format_double(s.p99_latency * 1e6, 2), format_double(s.mean_hops, 2),
               format_double(s.throughput / 1e9, 2)});
  }
  std::cout << "pattern=" << net::to_string(pattern) << " policy=" << net::to_string(policy)
            << " load=" << load << "\n"
            << t.str();
  return 0;
}

void usage() {
  std::cout <<
      "dfv — dragonfly performance-variability toolkit\n"
      "\n"
      "  dfv topology  [--groups N]\n"
      "  dfv campaign  [--days N] [--cache DIR] [--out DIR]\n"
      "  dfv blame     --app APP --nodes N [--tau X] [--cache DIR]\n"
      "  dfv deviation --app APP --nodes N [--cache DIR]\n"
      "  dfv forecast  --app APP --nodes N --m M --k K [--features FS] [--cache DIR]\n"
      "  dfv simulate  [--pattern uniform|adversarial|hotspot]\n"
      "                [--policy minimal|valiant|ugal] [--load X] [--groups N]\n";
}

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::Warn);
  if (argc < 2) {
    usage();
    return 1;
  }
  const std::string cmd = argv[1];
  const Args args = parse(argc, argv, 2);
  try {
    if (cmd == "topology") return cmd_topology(args);
    if (cmd == "campaign") return cmd_campaign(args);
    if (cmd == "blame") return cmd_blame(args);
    if (cmd == "deviation") return cmd_deviation(args);
    if (cmd == "forecast") return cmd_forecast(args);
    if (cmd == "simulate") return cmd_simulate(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  usage();
  return 1;
}
