// dfv — command-line driver for the dragonfly-variability library.
//
// Subcommands, arguments, defaults, and help text are declared once in
// the cli::App table in main(); run `dfv --help` or `dfv help <command>`
// for the authoritative usage. Every command accepts `--key value` and
// `--key=value`, rejects unknown flags with a non-zero exit, and takes
// `--threads N` to size the deterministic parallel execution pool
// (0 = DFV_THREADS env or hardware concurrency). Results are
// bit-identical for any thread count.
#include <chrono>
#include <cmath>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>

#include "analysis/forecast.hpp"
#include "analysis/neighborhood.hpp"
#include "apps/registry.hpp"
#include "common/ascii_plot.hpp"
#include "common/check.hpp"
#include "common/cli.hpp"
#include "common/log.hpp"
#include "common/table.hpp"
#include "core/study.hpp"
#include "exec/exec.hpp"
#include "faults/faults.hpp"
#include "net/packet_sim.hpp"
#include "net/vc_sim.hpp"

namespace {

using namespace dfv;

faults::FaultSpec parse_fault_spec(const cli::ParsedArgs& a) {
  faults::FaultSpec spec;
  spec.rate = a.get_double("fault-rate");
  spec.seed = std::uint64_t(a.get_int("fault-seed"));
  spec.kinds = faults::parse_fault_kinds(a.get("fault-kinds"));
  spec.validate();
  return spec;
}

core::VariabilityStudy make_study(const cli::ParsedArgs& a) {
  return core::VariabilityStudy(sim::CampaignConfig::cori()
                                    .seed(20181203)
                                    .days(a.get_int("days"))
                                    .faults(parse_fault_spec(a)),
                                a.get("cache"),
                                faults::parse_repair_policy(a.get("repair-policy")));
}

analysis::FeatureSet parse_feature_set(const std::string& name) {
  for (auto cand : {analysis::FeatureSet::App, analysis::FeatureSet::AppPlacement,
                    analysis::FeatureSet::AppPlacementIo,
                    analysis::FeatureSet::AppPlacementIoSys})
    if (name == analysis::to_string(cand)) return cand;
  return analysis::FeatureSet::App;
}

int cmd_topology(const cli::ParsedArgs& a) {
  net::DragonflyConfig cfg = net::DragonflyConfig::cori();
  if (a.given("groups")) cfg = net::DragonflyConfig::small(a.get_int("groups"));
  std::cout << net::Topology(cfg).describe();
  return 0;
}

int cmd_campaign(const cli::ParsedArgs& a) {
  set_log_level(LogLevel::Info);
  auto study = make_study(a);
  const auto& result = study.campaign();
  const auto& reports = study.repair_reports();
  if (reports.empty()) {
    Table t({"dataset", "runs", "steps/run"});
    for (const auto& ds : result.datasets)
      t.add_row({ds.spec.label(), std::to_string(ds.num_runs()),
                 std::to_string(ds.steps_per_run())});
    std::cout << t.str();
  } else {
    Table t({"dataset", "runs", "steps/run", "dropped runs", "bad steps", "imputed",
             "wraps", "lost profiles"});
    for (std::size_t i = 0; i < result.datasets.size(); ++i) {
      const auto& ds = result.datasets[i];
      const auto& rep = reports[i];
      t.add_row({ds.spec.label(), std::to_string(ds.num_runs()),
                 std::to_string(ds.steps_per_run()), std::to_string(rep.runs_dropped),
                 std::to_string(rep.bad_steps), std::to_string(rep.imputed_steps),
                 std::to_string(rep.wrapped_cells), std::to_string(rep.profiles_missing)});
    }
    std::cout << t.str();
  }
  if (!a.get("out").empty()) {
    for (const auto& ds : result.datasets) {
      const std::string path = a.get("out") + "/" + ds.spec.label() + ".csv";
      std::cout << (sim::save_dataset(ds, path) ? "wrote " : "FAILED to write ") << path
                << "\n";
    }
  }
  return 0;
}

int cmd_blame(const cli::ParsedArgs& a) {
  auto study = make_study(a);
  const auto res =
      study.neighborhood(a.get("app"), a.get_int("nodes"), a.get_double("tau"));
  Table t({"user", "MI (nats)", "present in runs", "P(optimal|present)", "P(optimal)"});
  for (const auto& s : res.ranked) {
    if (s.mi < 1e-4) break;
    t.add_row({"User-" + std::to_string(s.user_id), format_double(s.mi, 4),
               format_double(100.0 * s.presence, 1) + "%",
               format_double(s.optimal_when_present, 2),
               format_double(s.optimal_overall, 2)});
  }
  std::cout << t.str();
  return 0;
}

int cmd_deviation(const cli::ParsedArgs& a) {
  auto study = make_study(a);
  const auto res = study.deviation(a.get("app"), a.get_int("nodes"));
  std::vector<std::string> labels;
  for (int c = 0; c < mon::kNumCounters; ++c)
    labels.emplace_back(mon::counter_name(mon::counter_from_index(c)));
  std::cout << bar_chart(labels, res.survival, 48, "RFE survival relevance");
  std::cout << "\nGBR CV MAPE: " << format_double(res.cv_mape, 2)
            << "%   linear baseline: " << format_double(res.cv_mape_linear, 2) << "%\n";
  return 0;
}

int cmd_forecast(const cli::ParsedArgs& a) {
  auto study = make_study(a);
  const analysis::FeatureSet fs = parse_feature_set(a.get("features"));
  if (a.flag("grid")) {
    // Fig. 8/10 ablation: sweep (m, k) x feature sets, cell-parallel.
    std::vector<analysis::WindowConfig> cells;
    for (int m : {3, 10, 30})
      for (int k : {5, 20, 40})
        for (auto f : {analysis::FeatureSet::App, analysis::FeatureSet::AppPlacementIoSys})
          cells.push_back({m, k, f});
    const auto grid = study.forecast_grid(a.get("app"), a.get_int("nodes"), cells);
    Table t({"m", "k", "features", "attention", "persistence", "mean"});
    for (const auto& cell : grid)
      t.add_row({std::to_string(cell.window.m), std::to_string(cell.window.k),
                 analysis::to_string(cell.window.features),
                 format_double(cell.eval.mape_attention, 2),
                 format_double(cell.eval.mape_persistence, 2),
                 format_double(cell.eval.mape_mean, 2)});
    std::cout << t.str();
    return 0;
  }
  const analysis::WindowConfig wcfg{a.get_int("m"), a.get_int("k"), fs};
  const auto eval = study.forecast(a.get("app"), a.get_int("nodes"), wcfg);
  Table t({"model", "MAPE (%)"});
  t.add_row({"attention", format_double(eval.mape_attention, 2)});
  t.add_row({"persistence", format_double(eval.mape_persistence, 2)});
  t.add_row({"dataset mean", format_double(eval.mape_mean, 2)});
  std::cout << t.str();
  return 0;
}

/// Resilience report: sweep fault rates and compare the analysis-quality
/// cost of repairing vs dropping degraded telemetry. The underlying
/// campaign is generated once per rate (policies share the cache entry).
int cmd_faults(const cli::ParsedArgs& a) {
  const std::string app_name = a.get("app");
  const int nodes = a.get_int("nodes");

  std::vector<double> rates;
  {
    std::istringstream is(a.get("rates"));
    std::string tok;
    while (std::getline(is, tok, ','))
      if (!tok.empty()) rates.push_back(std::stod(tok));
  }
  DFV_CHECK_MSG(!rates.empty(), "--rates needs at least one fault rate");

  faults::FaultSpec base_spec;
  base_spec.seed = std::uint64_t(a.get_int("fault-seed"));
  base_spec.kinds = faults::parse_fault_kinds(a.get("fault-kinds"));
  const analysis::WindowConfig wcfg{a.get_int("m"), a.get_int("k"),
                                    analysis::FeatureSet::App};

  auto make_config = [&](double rate) {
    auto builder = a.flag("small") ? sim::CampaignConfig::small_machine(20181203)
                                   : sim::CampaignConfig::cori().seed(20181203);
    faults::FaultSpec spec = base_spec;
    spec.rate = rate;
    return builder.days(a.get_int("days")).faults(spec).build();
  };

  struct RowEval {
    std::string runs = "—", samples = "—";
    double dev = std::numeric_limits<double>::quiet_NaN();
    double fc = std::numeric_limits<double>::quiet_NaN();
  };
  // Each metric degrades independently: a policy can leave too little
  // data for forecasting (every window touches a bad step) while the
  // per-step deviation analysis still has plenty of samples.
  auto evaluate = [&](double rate, faults::RepairPolicy policy,
                      const std::string& label) {
    RowEval r;
    try {
      core::VariabilityStudy study(make_config(rate), a.get("cache"), policy);
      r.runs = std::to_string(study.dataset(app_name, nodes).num_runs());
      try {
        const auto dev = study.deviation(app_name, nodes);
        r.samples = std::to_string(dev.samples);
        r.dev = dev.cv_mape;
      } catch (const std::exception& e) {
        DFV_LOG_WARN("faults: rate " << rate << " policy " << label
                                     << " deviation failed: " << e.what());
      }
      try {
        r.fc = study.forecast(app_name, nodes, wcfg).mape_attention;
      } catch (const std::exception& e) {
        DFV_LOG_WARN("faults: rate " << rate << " policy " << label
                                     << " forecast failed: " << e.what());
      }
    } catch (const std::exception& e) {
      DFV_LOG_WARN("faults: rate " << rate << " policy " << label
                                   << " failed: " << e.what());
    }
    return r;
  };
  const auto fmt_opt = [](double v) {
    return std::isfinite(v) ? format_double(v, 2) : std::string("—");
  };
  // Resilience is fidelity: how far the analysis drifts from what clean
  // telemetry would have concluded. Raw MAPE alone is misleading — drop
  // can "score" better simply by discarding the data until the task is
  // easier, while its conclusions stray further from the truth.
  const auto fmt_drift = [&](double v, double base) {
    return std::isfinite(v) && std::isfinite(base)
               ? format_double(std::fabs(v - base), 2)
               : std::string("—");
  };

  Table t({"rate", "policy", "runs", "samples", "deviation MAPE (%)", "dev drift",
           "forecast MAPE (%)", "fc drift"});
  const RowEval clean = evaluate(0.0, faults::RepairPolicy::Strict, "clean");
  t.add_row({"0.0%", "clean", clean.runs, clean.samples, fmt_opt(clean.dev),
             fmt_drift(clean.dev, clean.dev), fmt_opt(clean.fc),
             fmt_drift(clean.fc, clean.fc)});
  for (double rate : rates) {
    if (rate <= 0.0) continue;  // the clean baseline is always the first row
    for (faults::RepairPolicy policy :
         {faults::RepairPolicy::Repair, faults::RepairPolicy::Drop}) {
      const std::string label = faults::to_string(policy);
      const RowEval r = evaluate(rate, policy, label);
      t.add_row({format_double(100.0 * rate, 1) + "%", label, r.runs, r.samples,
                 fmt_opt(r.dev), fmt_drift(r.dev, clean.dev), fmt_opt(r.fc),
                 fmt_drift(r.fc, clean.fc)});
    }
  }
  std::cout << t.str();
  std::cout << "\ndrift = |MAPE - clean MAPE|: how far degraded telemetry pulls the\n"
               "analysis away from the clean-data result. repair unwinds 2^32\n"
               "wraparounds exactly and imputes dropped/corrupt steps, keeping the\n"
               "statistics anchored to the clean baseline; drop discards damaged\n"
               "steps (and every window they touch), biasing what remains.\n";
  return 0;
}

int cmd_simulate(const cli::ParsedArgs& a) {
  net::DragonflyConfig cfg = net::DragonflyConfig::small(a.get_int("groups"));
  const net::Topology topo(cfg);
  net::TrafficPattern pattern = net::TrafficPattern::Uniform;
  if (a.get("pattern") == "adversarial") pattern = net::TrafficPattern::AdversarialShift;
  else if (a.get("pattern") == "hotspot") pattern = net::TrafficPattern::Hotspot;
  net::RoutingPolicy policy = net::RoutingPolicy::Ugal;
  if (a.get("policy") == "minimal") policy = net::RoutingPolicy::Minimal;
  else if (a.get("policy") == "valiant") policy = net::RoutingPolicy::Valiant;
  const double load = a.get_double("load");
  const int packets = a.get_int("packets");

  Table t({"engine", "mean latency (us)", "p99 (us)", "mean hops", "throughput (GB/s)"});
  {
    net::PacketSimParams params;
    params.policy = policy;
    net::PacketSim sim(topo, params, 1);
    const auto s = sim.run_synthetic(pattern, load, packets);
    t.add_row({"source-routed", format_double(s.mean_latency * 1e6, 2),
               format_double(s.p99_latency * 1e6, 2), format_double(s.mean_hops, 2),
               format_double(s.throughput / 1e9, 2)});
  }
  {
    net::VcSimParams params;
    params.policy = policy;
    net::VcPacketSim sim(topo, params, 1);
    const auto s = sim.run_synthetic(pattern, load, packets);
    t.add_row({std::string("credit/VC") + (s.deadlocked ? " [DEADLOCK]" : ""),
               format_double(s.mean_latency * 1e6, 2),
               format_double(s.p99_latency * 1e6, 2), format_double(s.mean_hops, 2),
               format_double(s.throughput / 1e9, 2)});
  }
  std::cout << "pattern=" << net::to_string(pattern) << " policy=" << net::to_string(policy)
            << " load=" << load << "\n"
            << t.str();
  return 0;
}

/// Wrap a handler: size the pool from --threads first, and print one
/// wall-clock line per phase (command) afterwards so speedups are visible
/// without a profiler.
template <typename Fn>
std::function<int(const cli::ParsedArgs&)> timed_phase(const char* phase, Fn fn) {
  return [phase, fn](const cli::ParsedArgs& a) {
    const int threads = exec::configure_threads(a.get_int("threads"));
    const auto t0 = std::chrono::steady_clock::now();
    const int rc = fn(a);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    std::cerr << "[" << phase << "] wall-clock " << format_double(secs, 2) << " s on "
              << threads << " thread" << (threads == 1 ? "" : "s") << "\n";
    return rc;
  };
}

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::Warn);

  using cli::ArgSpec;
  using cli::ArgType;
  const ArgSpec app_arg{"app", ArgType::String, "MILC", "application dataset"};
  const ArgSpec nodes_arg{"nodes", ArgType::Int, "128", "job node count"};
  const ArgSpec days_arg{"days", ArgType::Int, "120", "campaign length in days"};
  const ArgSpec fault_rate_arg{"fault-rate", ArgType::Double, "0",
                               "telemetry fault probability (0 disables injection)"};
  const ArgSpec fault_seed_arg{"fault-seed", ArgType::Int, "64023",
                               "fault stream seed (mixed with the campaign seed)"};
  const ArgSpec fault_kinds_arg{
      "fault-kinds", ArgType::String, "all",
      "comma list: dropout | wraparound | corrupt | truncate | missing-profile | all"};
  const ArgSpec repair_arg{"repair-policy", ArgType::String, "repair",
                           "degraded-data policy: strict | repair | drop"};
  const std::vector<ArgSpec> fault_args{fault_rate_arg, fault_seed_arg, fault_kinds_arg,
                                        repair_arg};
  auto with_faults = [&fault_args](std::vector<ArgSpec> args) {
    args.insert(args.end(), fault_args.begin(), fault_args.end());
    return args;
  };

  cli::App app("dfv", "dragonfly performance-variability toolkit");
  app.common_arg({"threads", ArgType::Int, "0",
                  "worker threads (0 = DFV_THREADS env or hardware)"});
  app.common_arg({"cache", ArgType::String, "dfv_cache", "campaign cache directory"});

  app.command("topology", "describe the dragonfly topology",
              {{"groups", ArgType::Int, "0", "use a small machine with N groups"}},
              timed_phase("topology", cmd_topology));
  app.command("campaign", "generate (or load) the run campaign",
              with_faults({days_arg,
                           {"out", ArgType::String, "", "also export dataset CSVs here"}}),
              timed_phase("campaign", cmd_campaign));
  app.command("blame", "Table III: rank neighbor users by blame for slow runs",
              with_faults({app_arg, nodes_arg, days_arg,
                           {"tau", ArgType::Double, "1.0", "slowdown threshold"}}),
              timed_phase("blame", cmd_blame));
  app.command("deviation", "Fig. 9: per-counter relevance for deviation prediction",
              with_faults({app_arg, nodes_arg, days_arg}),
              timed_phase("deviation", cmd_deviation));
  app.command(
      "forecast", "Figs. 8/10: forecasting MAPE for one cell or the whole grid",
      with_faults(
          {app_arg, nodes_arg, days_arg, {"m", ArgType::Int, "10", "history length (steps)"},
           {"k", ArgType::Int, "20", "horizon (steps)"},
           {"features", ArgType::String, "app",
            "feature set: app | app+placement | app+placement+io | app+placement+io+sys"},
           {"grid", ArgType::Flag, "", "sweep the (m, k, feature-set) ablation grid"}}),
      timed_phase("forecast", cmd_forecast));
  app.command(
      "faults", "resilience report: analysis error vs fault rate, repair vs drop",
      {app_arg, nodes_arg, days_arg, fault_seed_arg, fault_kinds_arg,
       {"rates", ArgType::String, "0,0.02,0.05,0.1", "comma list of fault rates to sweep"},
       {"m", ArgType::Int, "10", "forecast history length (steps)"},
       {"k", ArgType::Int, "20", "forecast horizon (steps)"},
       {"small", ArgType::Flag, "", "use the small test machine (fast smoke run)"}},
      timed_phase("faults", cmd_faults));
  app.command("simulate", "packet-level engines on synthetic traffic",
              {{"groups", ArgType::Int, "6", "small machine group count"},
               {"pattern", ArgType::String, "uniform", "uniform | adversarial | hotspot"},
               {"policy", ArgType::String, "ugal", "minimal | valiant | ugal"},
               {"load", ArgType::Double, "0.3", "offered load fraction"},
               {"packets", ArgType::Int, "300", "packets per node"}},
              timed_phase("simulate", cmd_simulate));

  try {
    return app.run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
