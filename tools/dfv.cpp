// dfv — command-line driver for the dragonfly-variability library.
//
// Subcommands, arguments, defaults, and help text are declared once in
// the cli::App table in main(); run `dfv --help` or `dfv help <command>`
// for the authoritative usage. Every command accepts `--key value` and
// `--key=value`, rejects unknown flags with a non-zero exit, and takes
// `--threads N` to size the deterministic parallel execution pool
// (0 = DFV_THREADS env or hardware concurrency). Results are
// bit-identical for any thread count.
//
// Every subcommand is a thin adapter over dfv::api: it builds a request,
// hands it to an api::Session (the same session layer `dfv serve`
// shards), and formats the structured response. The CLI owns no analysis
// logic of its own; an ErrorResponse is re-raised so error wording and
// exit codes are identical to calling the library directly.
#include <chrono>
#include <cmath>
#include <csignal>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>

#include "api/session.hpp"
#include "common/ascii_plot.hpp"
#include "common/check.hpp"
#include "common/cli.hpp"
#include "common/log.hpp"
#include "common/table.hpp"
#include "exec/exec.hpp"
#include "faults/faults.hpp"
#include "mon/counters.hpp"
#include "serve/server.hpp"
#include "sim/cache_gc.hpp"
#include "store/longitudinal.hpp"

namespace {

using namespace dfv;

faults::FaultSpec parse_fault_spec(const cli::ParsedArgs& a) {
  faults::FaultSpec spec;
  spec.rate = a.get_double("fault-rate");
  spec.seed = std::uint64_t(a.get_int("fault-seed"));
  spec.kinds = faults::parse_fault_kinds(a.get("fault-kinds"));
  spec.validate();
  return spec;
}

api::SessionOptions make_session_options(const cli::ParsedArgs& a) {
  api::SessionOptions opt;
  opt.config = sim::CampaignConfig::cori()
                   .seed(20181203)
                   .days(a.get_int("days"))
                   .faults(parse_fault_spec(a))
                   .build();
  opt.cache_dir = a.get("cache");
  opt.repair = faults::parse_repair_policy(a.get("repair-policy"));
  if (a.flag("store")) opt.cache_format = sim::CacheFormat::Store;
  return opt;
}

/// Unwrap one expected response type; an ErrorResponse is re-raised as
/// the exception it came from so main()'s handler prints the exact text.
template <typename R>
R unwrap(api::Response resp) {
  if (const auto* err = std::get_if<api::ErrorResponse>(&resp)) api::rethrow(*err);
  return std::get<R>(std::move(resp));
}

int cmd_topology(const cli::ParsedArgs& a) {
  api::Session session{api::SessionOptions{}};
  const auto resp = unwrap<api::TopologyResponse>(
      session.handle(api::TopologyRequest{}.group_count(a.get_int("groups"))));
  std::cout << resp.description;
  return 0;
}

int cmd_campaign(const cli::ParsedArgs& a) {
  set_log_level(LogLevel::Info);
  // Incremental longitudinal path: append N more runs to the mmap'd
  // column store under the cache directory and publish. Run content is a
  // pure function of (seed, run index), so any append cadence converges
  // on byte-identical column files.
  if (const int append = a.get_int("append"); append > 0) {
    store::LongitudinalSpec spec;
    spec.seed = std::uint64_t(a.get_int("append-seed"));
    std::ostringstream dir;
    dir << a.get("cache") << "/longitudinal_" << std::hex << spec.seed << ".store";
    store::ColumnStore cs = store::open_longitudinal_store(dir.str());
    const std::uint64_t first = cs.rows();
    store::append_longitudinal_runs(cs, spec, first, std::uint64_t(append));
    sim::enforce_cache_budget_from_env(a.get("cache"));
    std::cout << "appended runs [" << first << ", " << cs.rows() << ") to " << dir.str()
              << "\n";
    return 0;
  }
  api::Session session(make_session_options(a));
  const auto summary =
      unwrap<api::CampaignSummaryResponse>(session.handle(api::CampaignSummaryRequest{}));
  if (!summary.faulted) {
    Table t({"dataset", "runs", "steps/run"});
    for (const auto& row : summary.rows)
      t.add_row({row.label, std::to_string(row.runs), std::to_string(row.steps_per_run)});
    std::cout << t.str();
  } else {
    Table t({"dataset", "runs", "steps/run", "dropped runs", "bad steps", "imputed",
             "wraps", "lost profiles"});
    for (const auto& row : summary.rows)
      t.add_row({row.label, std::to_string(row.runs), std::to_string(row.steps_per_run),
                 std::to_string(row.runs_dropped), std::to_string(row.bad_steps),
                 std::to_string(row.imputed_steps), std::to_string(row.wrapped_cells),
                 std::to_string(row.profiles_missing)});
    std::cout << t.str();
  }
  if (!a.get("out").empty()) {
    const auto exported = unwrap<api::ExportResponse>(
        session.handle(api::ExportRequest{}.out_dir(a.get("out"))));
    for (const auto& item : exported.items)
      std::cout << (item.ok ? "wrote " : "FAILED to write ") << item.path << "\n";
  }
  return 0;
}

int cmd_blame(const cli::ParsedArgs& a) {
  api::Session session(make_session_options(a));
  const auto resp = unwrap<api::NeighborhoodResponse>(
      session.handle(api::NeighborhoodRequest{}
                         .app(a.get("app"))
                         .nodes(a.get_int("nodes"))
                         .threshold(a.get_double("tau"))));
  Table t({"user", "MI (nats)", "present in runs", "P(optimal|present)", "P(optimal)"});
  for (const auto& s : resp.result.ranked) {
    if (s.mi < 1e-4) break;
    t.add_row({"User-" + std::to_string(s.user_id), format_double(s.mi, 4),
               format_double(100.0 * s.presence, 1) + "%",
               format_double(s.optimal_when_present, 2),
               format_double(s.optimal_overall, 2)});
  }
  std::cout << t.str();
  return 0;
}

int cmd_deviation(const cli::ParsedArgs& a) {
  api::Session session(make_session_options(a));
  const auto resp = unwrap<api::DeviationResponse>(session.handle(
      api::DeviationRequest{}.app(a.get("app")).nodes(a.get_int("nodes"))));
  const analysis::DeviationResult& res = resp.result;
  std::vector<std::string> labels;
  for (int c = 0; c < mon::kNumCounters; ++c)
    labels.emplace_back(mon::counter_name(mon::counter_from_index(c)));
  std::cout << bar_chart(labels, res.survival, 48, "RFE survival relevance");
  std::cout << "\nGBR CV MAPE: " << format_double(res.cv_mape, 2)
            << "%   linear baseline: " << format_double(res.cv_mape_linear, 2) << "%\n";
  return 0;
}

int cmd_forecast(const cli::ParsedArgs& a) {
  api::Session session(make_session_options(a));
  const analysis::FeatureSet fs = api::parse_feature_set(a.get("features"));
  if (a.flag("grid")) {
    // Fig. 8/10 ablation: sweep (m, k) x feature sets, cell-parallel.
    auto req = api::ForecastGridRequest{}.app(a.get("app")).nodes(a.get_int("nodes"));
    for (int m : {3, 10, 30})
      for (int k : {5, 20, 40})
        for (auto f : {analysis::FeatureSet::App, analysis::FeatureSet::AppPlacementIoSys})
          req.cell({m, k, f});
    const auto resp = unwrap<api::ForecastGridResponse>(session.handle(req));
    Table t({"m", "k", "features", "attention", "persistence", "mean"});
    for (const auto& cell : resp.cells)
      t.add_row({std::to_string(cell.window.m), std::to_string(cell.window.k),
                 analysis::to_string(cell.window.features),
                 format_double(cell.eval.mape_attention, 2),
                 format_double(cell.eval.mape_persistence, 2),
                 format_double(cell.eval.mape_mean, 2)});
    std::cout << t.str();
    return 0;
  }
  const auto resp = unwrap<api::ForecastEvalResponse>(
      session.handle(api::ForecastEvalRequest{}
                         .app(a.get("app"))
                         .nodes(a.get_int("nodes"))
                         .m(a.get_int("m"))
                         .k(a.get_int("k"))
                         .features(fs)));
  Table t({"model", "MAPE (%)"});
  t.add_row({"attention", format_double(resp.eval.mape_attention, 2)});
  t.add_row({"persistence", format_double(resp.eval.mape_persistence, 2)});
  t.add_row({"dataset mean", format_double(resp.eval.mape_mean, 2)});
  std::cout << t.str();
  return 0;
}

/// Resilience report: sweep fault rates and compare the analysis-quality
/// cost of repairing vs dropping degraded telemetry. The underlying
/// campaign is generated once per rate (policies share the cache entry).
int cmd_faults(const cli::ParsedArgs& a) {
  const std::string app_name = a.get("app");
  const int nodes = a.get_int("nodes");

  std::vector<double> rates;
  {
    std::istringstream is(a.get("rates"));
    std::string tok;
    while (std::getline(is, tok, ','))
      if (!tok.empty()) rates.push_back(std::stod(tok));
  }
  DFV_CHECK_MSG(!rates.empty(), "--rates needs at least one fault rate");

  faults::FaultSpec base_spec;
  base_spec.seed = std::uint64_t(a.get_int("fault-seed"));
  base_spec.kinds = faults::parse_fault_kinds(a.get("fault-kinds"));

  auto make_options = [&](double rate, faults::RepairPolicy policy) {
    auto builder = a.flag("small") ? sim::CampaignConfig::small_machine(20181203)
                                   : sim::CampaignConfig::cori().seed(20181203);
    faults::FaultSpec spec = base_spec;
    spec.rate = rate;
    api::SessionOptions opt;
    opt.config = builder.days(a.get_int("days")).faults(spec).build();
    opt.cache_dir = a.get("cache");
    opt.repair = policy;
    return opt;
  };

  struct RowEval {
    std::string runs = "—", samples = "—";
    double dev = std::numeric_limits<double>::quiet_NaN();
    double fc = std::numeric_limits<double>::quiet_NaN();
  };
  // Each metric degrades independently: a policy can leave too little
  // data for forecasting (every window touches a bad step) while the
  // per-step deviation analysis still has plenty of samples.
  auto evaluate = [&](double rate, faults::RepairPolicy policy,
                      const std::string& label) {
    RowEval r;
    try {
      api::Session session(make_options(rate, policy));
      const auto summary = unwrap<api::CampaignSummaryResponse>(
          session.handle(api::CampaignSummaryRequest{}));
      const std::string ds_label = app_name + "-" + std::to_string(nodes);
      bool found = false;
      for (const auto& row : summary.rows)
        if (row.label == ds_label) {
          r.runs = std::to_string(row.runs);
          found = true;
        }
      DFV_CHECK_MSG(found, "no dataset " << ds_label << " in the campaign");
      try {
        const auto dev = unwrap<api::DeviationResponse>(session.handle(
            api::DeviationRequest{}.app(app_name).nodes(nodes)));
        r.samples = std::to_string(dev.result.samples);
        r.dev = dev.result.cv_mape;
      } catch (const std::exception& e) {
        DFV_LOG_WARN("faults: rate " << rate << " policy " << label
                                     << " deviation failed: " << e.what());
      }
      try {
        const auto fc = unwrap<api::ForecastEvalResponse>(
            session.handle(api::ForecastEvalRequest{}
                               .app(app_name)
                               .nodes(nodes)
                               .m(a.get_int("m"))
                               .k(a.get_int("k"))
                               .features(analysis::FeatureSet::App)));
        r.fc = fc.eval.mape_attention;
      } catch (const std::exception& e) {
        DFV_LOG_WARN("faults: rate " << rate << " policy " << label
                                     << " forecast failed: " << e.what());
      }
    } catch (const std::exception& e) {
      DFV_LOG_WARN("faults: rate " << rate << " policy " << label
                                   << " failed: " << e.what());
    }
    return r;
  };
  const auto fmt_opt = [](double v) {
    return std::isfinite(v) ? format_double(v, 2) : std::string("—");
  };
  // Resilience is fidelity: how far the analysis drifts from what clean
  // telemetry would have concluded. Raw MAPE alone is misleading — drop
  // can "score" better simply by discarding the data until the task is
  // easier, while its conclusions stray further from the truth.
  const auto fmt_drift = [&](double v, double base) {
    return std::isfinite(v) && std::isfinite(base)
               ? format_double(std::fabs(v - base), 2)
               : std::string("—");
  };

  Table t({"rate", "policy", "runs", "samples", "deviation MAPE (%)", "dev drift",
           "forecast MAPE (%)", "fc drift"});
  const RowEval clean = evaluate(0.0, faults::RepairPolicy::Strict, "clean");
  t.add_row({"0.0%", "clean", clean.runs, clean.samples, fmt_opt(clean.dev),
             fmt_drift(clean.dev, clean.dev), fmt_opt(clean.fc),
             fmt_drift(clean.fc, clean.fc)});
  for (double rate : rates) {
    if (rate <= 0.0) continue;  // the clean baseline is always the first row
    for (faults::RepairPolicy policy :
         {faults::RepairPolicy::Repair, faults::RepairPolicy::Drop}) {
      const std::string label = faults::to_string(policy);
      const RowEval r = evaluate(rate, policy, label);
      t.add_row({format_double(100.0 * rate, 1) + "%", label, r.runs, r.samples,
                 fmt_opt(r.dev), fmt_drift(r.dev, clean.dev), fmt_opt(r.fc),
                 fmt_drift(r.fc, clean.fc)});
    }
  }
  std::cout << t.str();
  std::cout << "\ndrift = |MAPE - clean MAPE|: how far degraded telemetry pulls the\n"
               "analysis away from the clean-data result. repair unwinds 2^32\n"
               "wraparounds exactly and imputes dropped/corrupt steps, keeping the\n"
               "statistics anchored to the clean baseline; drop discards damaged\n"
               "steps (and every window they touch), biasing what remains.\n";
  return 0;
}

/// Inspect and garbage-collect the on-disk cache: `--ls` lists entries
/// with format, size, and recency; `--evict-lru --max-bytes N` evicts
/// least-recently-used entries until the directory fits the budget.
int cmd_cache(const cli::ParsedArgs& a) {
  const std::string cache_dir = a.get("cache");
  if (a.flag("evict-lru")) {
    const double budget = a.get_double("max-bytes");
    DFV_CHECK_MSG(budget >= 0.0, "--max-bytes must be non-negative");
    const auto evicted = sim::evict_cache_lru(cache_dir, std::uintmax_t(budget));
    for (const auto& name : evicted) std::cout << "evicted " << name << "\n";
    std::cout << evicted.size() << " entr" << (evicted.size() == 1 ? "y" : "ies")
              << " evicted\n";
    return 0;
  }
  // Default action is --ls.
  const auto entries = sim::list_cache_entries(cache_dir);
  Table t({"entry", "kind", "bytes"});
  std::uintmax_t total = 0;
  for (const auto& e : entries) {
    t.add_row({e.name, e.kind, std::to_string(e.bytes)});
    total += e.bytes;
  }
  std::cout << t.str();
  std::cout << entries.size() << " entr" << (entries.size() == 1 ? "y" : "ies") << ", "
            << total << " bytes in " << cache_dir << "\n";
  return 0;
}

int cmd_simulate(const cli::ParsedArgs& a) {
  api::Session session{api::SessionOptions{}};
  const auto resp = unwrap<api::SimulateResponse>(
      session.handle(api::SimulateRequest{}
                         .group_count(a.get_int("groups"))
                         .traffic(a.get("pattern"))
                         .routing(a.get("policy"))
                         .offered_load(a.get_double("load"))
                         .packet_count(a.get_int("packets"))));
  Table t({"engine", "mean latency (us)", "p99 (us)", "mean hops", "throughput (GB/s)"});
  for (const auto& e : resp.engines)
    t.add_row({e.name + (e.deadlocked ? " [DEADLOCK]" : ""),
               format_double(e.mean_latency_s * 1e6, 2),
               format_double(e.p99_latency_s * 1e6, 2), format_double(e.mean_hops, 2),
               format_double(e.throughput_bps / 1e9, 2)});
  std::cout << "pattern=" << resp.pattern << " policy=" << resp.policy
            << " load=" << resp.load << "\n"
            << t.str();
  return 0;
}

volatile std::sig_atomic_t g_stop_requested = 0;

void handle_stop_signal(int) { g_stop_requested = 1; }

/// Run the sharded resident query server until SIGINT/SIGTERM (or for
/// --duration seconds; handy for smoke tests). Blocks the main thread;
/// all serving happens on the shard threads.
int cmd_serve(const cli::ParsedArgs& a) {
  serve::ServerOptions opt;
  opt.shards = a.get_int("shards");
  const int port = a.get_int("port");
  DFV_CHECK_MSG(port >= 0 && port <= 65535, "--port must be in [0, 65535]");
  opt.port = std::uint16_t(port);
  opt.session = make_session_options(a);

  opt.max_inflight = a.get_int("max-inflight");
  const int request_timeout = a.get_int("request-timeout-ms");
  DFV_CHECK_MSG(request_timeout >= 0, "--request-timeout-ms must be non-negative");
  opt.default_deadline_ms = std::uint32_t(request_timeout);
  const int drain_timeout = a.get_int("drain-timeout-ms");
  DFV_CHECK_MSG(drain_timeout >= 1, "--drain-timeout-ms must be positive");
  opt.drain_timeout_ms = std::uint32_t(drain_timeout);

  serve::Server server(std::move(opt));
  server.start();
  std::cout << "serving on 127.0.0.1:" << server.port() << " with " << server.shards()
            << " shard" << (server.shards() == 1 ? "" : "s") << " (api v"
            << api::kApiVersion << ")" << std::endl;

  g_stop_requested = 0;
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);
  const double duration = a.get_double("duration");
  const auto t0 = std::chrono::steady_clock::now();
  while (g_stop_requested == 0) {
    if (duration > 0.0 &&
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count() >=
            duration)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);

  server.stop();
  const auto s = server.stats();
  std::cout << "served " << s.requests << " request" << (s.requests == 1 ? "" : "s")
            << " on " << s.connections << " connection"
            << (s.connections == 1 ? "" : "s") << " (" << s.local << " local, "
            << s.forwarded << " cross-shard)\n";
  if (s.shed_overload + s.shed_deadline + s.evicted_stalled + s.shutdown_aborted > 0)
    std::cout << "robustness: shed " << s.shed_overload << " overloaded, "
              << s.shed_deadline << " past-deadline; evicted " << s.evicted_stalled
              << " stalled; aborted " << s.shutdown_aborted << " at shutdown\n";
  return 0;
}

/// Wrap a handler: size the pool from --threads first, and print one
/// wall-clock line per phase (command) afterwards so speedups are visible
/// without a profiler.
template <typename Fn>
std::function<int(const cli::ParsedArgs&)> timed_phase(const char* phase, Fn fn) {
  return [phase, fn](const cli::ParsedArgs& a) {
    const int threads = exec::configure_threads(a.get_int("threads"));
    const auto t0 = std::chrono::steady_clock::now();
    const int rc = fn(a);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    std::cerr << "[" << phase << "] wall-clock " << format_double(secs, 2) << " s on "
              << threads << " thread" << (threads == 1 ? "" : "s") << "\n";
    return rc;
  };
}

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::Warn);

  using cli::ArgSpec;
  using cli::ArgType;
  const ArgSpec app_arg{"app", ArgType::String, "MILC", "application dataset"};
  const ArgSpec nodes_arg{"nodes", ArgType::Int, "128", "job node count"};
  const ArgSpec days_arg{"days", ArgType::Int, "120", "campaign length in days"};
  const ArgSpec fault_rate_arg{"fault-rate", ArgType::Double, "0",
                               "telemetry fault probability (0 disables injection)"};
  const ArgSpec fault_seed_arg{"fault-seed", ArgType::Int, "64023",
                               "fault stream seed (mixed with the campaign seed)"};
  const ArgSpec fault_kinds_arg{
      "fault-kinds", ArgType::String, "all",
      "comma list: dropout | wraparound | corrupt | truncate | missing-profile | all"};
  const ArgSpec repair_arg{"repair-policy", ArgType::String, "repair",
                           "degraded-data policy: strict | repair | drop"};
  const std::vector<ArgSpec> fault_args{fault_rate_arg, fault_seed_arg, fault_kinds_arg,
                                        repair_arg};
  const ArgSpec store_arg{"store", ArgType::Flag, "",
                          "cache the campaign as an mmap'd column store"};
  auto with_faults = [&fault_args, &store_arg](std::vector<ArgSpec> args) {
    args.insert(args.end(), fault_args.begin(), fault_args.end());
    args.push_back(store_arg);
    return args;
  };

  cli::App app("dfv", "dragonfly performance-variability toolkit");
  app.common_arg({"threads", ArgType::Int, "0",
                  "worker threads (0 = DFV_THREADS env or hardware)"});
  app.common_arg({"cache", ArgType::String, "dfv_cache", "campaign cache directory"});

  app.command("topology", "describe the dragonfly topology",
              {{"groups", ArgType::Int, "0", "use a small machine with N groups"}},
              timed_phase("topology", cmd_topology));
  app.command(
      "campaign", "generate (or load) the run campaign",
      with_faults({days_arg,
                   {"out", ArgType::String, "", "also export dataset CSVs here"},
                   {"append", ArgType::Int, "0",
                    "append N runs to the longitudinal column store and exit"},
                   {"append-seed", ArgType::Int, "4310",
                    "longitudinal campaign seed (names the store entry)"}}),
      timed_phase("campaign", cmd_campaign));
  app.command("blame", "Table III: rank neighbor users by blame for slow runs",
              with_faults({app_arg, nodes_arg, days_arg,
                           {"tau", ArgType::Double, "1.0", "slowdown threshold"}}),
              timed_phase("blame", cmd_blame));
  app.command("deviation", "Fig. 9: per-counter relevance for deviation prediction",
              with_faults({app_arg, nodes_arg, days_arg}),
              timed_phase("deviation", cmd_deviation));
  app.command(
      "forecast", "Figs. 8/10: forecasting MAPE for one cell or the whole grid",
      with_faults(
          {app_arg, nodes_arg, days_arg, {"m", ArgType::Int, "10", "history length (steps)"},
           {"k", ArgType::Int, "20", "horizon (steps)"},
           {"features", ArgType::String, "app",
            "feature set: app | app+placement | app+placement+io | app+placement+io+sys"},
           {"grid", ArgType::Flag, "", "sweep the (m, k, feature-set) ablation grid"}}),
      timed_phase("forecast", cmd_forecast));
  app.command(
      "faults", "resilience report: analysis error vs fault rate, repair vs drop",
      {app_arg, nodes_arg, days_arg, fault_seed_arg, fault_kinds_arg,
       {"rates", ArgType::String, "0,0.02,0.05,0.1", "comma list of fault rates to sweep"},
       {"m", ArgType::Int, "10", "forecast history length (steps)"},
       {"k", ArgType::Int, "20", "forecast horizon (steps)"},
       {"small", ArgType::Flag, "", "use the small test machine (fast smoke run)"}},
      timed_phase("faults", cmd_faults));
  app.command("cache", "list or LRU-evict on-disk cache entries",
              {{"ls", ArgType::Flag, "", "list cache entries (the default action)"},
               {"evict-lru", ArgType::Flag, "",
                "evict least-recently-used entries until under --max-bytes"},
               {"max-bytes", ArgType::Double, "0",
                "cache size budget in bytes for --evict-lru"}},
              timed_phase("cache", cmd_cache));
  app.command("simulate", "packet-level engines on synthetic traffic",
              {{"groups", ArgType::Int, "6", "small machine group count"},
               {"pattern", ArgType::String, "uniform", "uniform | adversarial | hotspot"},
               {"policy", ArgType::String, "ugal", "minimal | valiant | ugal"},
               {"load", ArgType::Double, "0.3", "offered load fraction"},
               {"packets", ArgType::Int, "300", "packets per node"}},
              timed_phase("simulate", cmd_simulate));
  app.command("serve", "sharded resident query server over the dfv::api wire protocol",
              with_faults({days_arg,
                           {"shards", ArgType::Int, "8", "shard threads (keyspace slices)"},
                           {"port", ArgType::Int, "0", "TCP port (0 = kernel-assigned)"},
                           {"duration", ArgType::Double, "0",
                            "stop after this many seconds (0 = run until SIGINT)"},
                           {"max-inflight", ArgType::Int, "64",
                            "per-shard forwarded requests before shedding Overloaded"},
                           {"request-timeout-ms", ArgType::Int, "0",
                            "server-side deadline for requests that carry none (0 = off)"},
                           {"drain-timeout-ms", ArgType::Int, "10000",
                            "graceful-drain budget of shutdown before ShuttingDown errors"}}),
              timed_phase("serve", cmd_serve));

  try {
    return app.run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
