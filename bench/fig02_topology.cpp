// Figure 2: the dragonfly network configuration of Cray XC systems.
// The paper's figure is a schematic; we print the constructed topology's
// structural summary and verify the wiring invariants at Cori scale.
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "net/topology.hpp"

int main() {
  using namespace dfv;
  bench::print_header("Figure 2", "Cray XC dragonfly configuration (structural summary)");

  const net::Topology topo(net::DragonflyConfig::cori());
  std::cout << topo.describe() << "\n";

  const auto& cfg = topo.config();
  Table t({"property", "value"});
  t.add_row({"groups", std::to_string(cfg.groups)});
  t.add_row({"routers per group (16x6 grid)", std::to_string(cfg.routers_per_group())});
  t.add_row({"nodes per router", std::to_string(cfg.nodes_per_router)});
  t.add_row({"total nodes", std::to_string(cfg.num_nodes())});
  t.add_row({"green links per router (row all-to-all)", std::to_string(cfg.row_size - 1)});
  t.add_row({"black links per router (column all-to-all)", std::to_string(cfg.col_size - 1)});
  t.add_row({"blue (global) ports per router", std::to_string(cfg.global_ports_per_router)});
  t.add_row({"blue links per group pair", std::to_string(topo.blue_copies())});
  t.add_row({"green/black/blue bandwidth (GB/s)",
             format_double(cfg.green_bw / 1e9, 2) + " / " +
                 format_double(cfg.black_bw / 1e9, 2) + " / " +
                 format_double(cfg.blue_bw / 1e9, 2)});
  std::cout << t.str();

  // Wiring invariant check at full scale (mirrors the unit tests).
  int bad = 0;
  for (net::RouterId r = 0; r < cfg.num_routers(); r += 97) {
    const net::Path p = topo.minimal_path(0, r, 0);
    if (!topo.path_connects(p, 0, r) || p.hops() > 5) ++bad;
  }
  std::cout << "\nminimal-path spot check at Cori scale: "
            << (bad == 0 ? "OK (all <= 5 hops)" : "FAILED") << "\n";
  return bad == 0 ? 0 : 1;
}
