// Figure 3: mean time-per-step behavior of each application across all
// runs: AMG 128/512 (20 steps), MILC 128/512 (80 steps, first 20 fast
// warmup), UMT (7 rising steps) and miniVite (6 declining steps).
#include <iostream>

#include "apps/registry.hpp"
#include "bench_common.hpp"
#include "common/ascii_plot.hpp"
#include "common/table.hpp"

int main() {
  using namespace dfv;
  bench::print_header("Figure 3", "Mean time per step behavior of each application");
  auto study = bench::make_study();

  std::cout << line_plot({Series{"AMG 128", study.dataset("AMG", 128).mean_step_curve()},
                          Series{"AMG 512", study.dataset("AMG", 512).mean_step_curve()}},
                         {.width = 70,
                          .height = 12,
                          .title = "AMG: mean time per step (s)",
                          .x_label = "step",
                          .y_from_zero = true})
            << "\n";

  std::cout << line_plot(
                   {Series{"MILC 128", study.dataset("MILC", 128).mean_step_curve()},
                    Series{"MILC 512", study.dataset("MILC", 512).mean_step_curve()}},
                   {.width = 70,
                    .height = 12,
                    .title = "MILC: mean time per step (s) — first 20 steps are warmup",
                    .x_label = "step",
                    .y_from_zero = true})
            << "\n";

  std::cout << line_plot({Series{"UMT 128", study.dataset("UMT", 128).mean_step_curve()}},
                         {.width = 40,
                          .height = 10,
                          .title = "UMT: mean time per step (s)",
                          .x_label = "step",
                          .y_from_zero = true})
            << "\n";
  std::cout << line_plot(
                   {Series{"miniVite 128", study.dataset("miniVite", 128).mean_step_curve()}},
                   {.width = 40,
                    .height = 10,
                    .title = "miniVite: mean time per step (s)",
                    .x_label = "step",
                    .y_from_zero = true})
            << "\n";

  // Numeric summary of the shapes the paper reports.
  Table t({"dataset", "steps", "first-step mean (s)", "last-step mean (s)"});
  for (const auto& spec : apps::paper_datasets()) {
    const auto curve = study.dataset(spec.app, spec.nodes).mean_step_curve();
    t.add_row({spec.label(), std::to_string(curve.size()), format_double(curve.front(), 2),
               format_double(curve.back(), 2)});
  }
  std::cout << t.str();
  std::cout << "\nShapes to match: AMG flat-ish; MILC warmup ~3.5x faster than steady\n"
               "steps; UMT rising; miniVite declining.\n";
  return 0;
}
