// Shared infrastructure for the experiment harnesses: the canonical
// campaign configuration (Cori-scale, Dec-Apr, 1-2 jobs/day/dataset) and
// a cached accessor so the six datasets are generated once and shared by
// every bench binary through an on-disk cache.
#pragma once

#include <chrono>
#include <string>

#include "core/study.hpp"

namespace dfv::bench {

/// The campaign configuration every bench binary uses. ~190 runs per
/// dataset on the 34-group Cori topology.
[[nodiscard]] sim::CampaignConfig paper_campaign_config();

/// Directory for the shared dataset cache (DFV_CACHE_DIR env overrides
/// the build-tree default).
[[nodiscard]] std::string cache_dir();

/// Study over the canonical campaign (generates or loads the cache).
[[nodiscard]] core::VariabilityStudy make_study();

/// Print the standard bench header (experiment id + paper reference).
void print_header(const std::string& experiment, const std::string& description);

/// Figures 4-5 panel: compute vs. MPI split (best/average/worst run) and
/// the per-routine MPI breakdown of one dataset.
void print_mpi_breakdown(const sim::Dataset& ds);

/// Scope guard that prints "[phase] wall-clock X s on N threads" to
/// stderr on destruction, so each bench phase reports the speedup the
/// dfv::exec pool delivered. Usage:
///   { PhaseTimer t("campaign"); auto& res = study.campaign(); ... }
class PhaseTimer {
 public:
  explicit PhaseTimer(std::string phase);
  ~PhaseTimer();
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  std::string phase_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace dfv::bench
