// Table III: sets of users highly correlated (via mutual information)
// with performance (non-)optimality, per dataset. The paper found users
// 2, 8 and 11 in four lists, user 9 in three; user 8 is the campaign
// account itself. Ground truth in the simulation: users {2, 8, 9, 11}
// are the built-in aggressors.
#include <algorithm>
#include <iostream>
#include <map>
#include <sstream>

#include "analysis/neighborhood.hpp"
#include "apps/registry.hpp"
#include "bench_common.hpp"
#include "common/table.hpp"
#include "sched/workload.hpp"

int main() {
  using namespace dfv;
  bench::print_header("Table III",
                      "Users highly correlated with performance optimality (tau = 1)");
  auto study = bench::make_study();

  std::map<int, int> list_count;
  Table t({"Application", "No. of nodes", "Highly correlated users"});
  for (const auto& spec : apps::paper_datasets()) {
    const auto res = study.neighborhood(spec.app, spec.nodes, /*tau=*/1.0);
    const auto blamed = analysis::blamed_users(res, /*top_k=*/9, /*min_mi=*/3e-3);
    std::ostringstream cell;
    cell << "User-[";
    for (std::size_t i = 0; i < blamed.size(); ++i) {
      if (i) cell << ", ";
      cell << blamed[i];
      ++list_count[blamed[i]];
    }
    cell << "]";
    t.add_row({spec.app, std::to_string(spec.nodes), cell.str()});
  }
  std::cout << t.str();

  // Cross-list summary: the paper's headline is users appearing in many
  // lists; compare against the simulation's ground-truth aggressors.
  std::vector<std::pair<int, int>> ranked(list_count.begin(), list_count.end());
  std::sort(ranked.begin(), ranked.end(),
            [](auto a, auto b) { return a.second > b.second; });
  std::cout << "\nUsers appearing in multiple lists:\n";
  for (const auto& [user, n] : ranked)
    if (n >= 2) std::cout << "  User-" << user << ": " << n << " lists\n";

  const auto truth = sched::ground_truth_aggressors();
  int recovered = 0;
  for (int u : truth)
    if (list_count.count(u) && list_count[u] >= 2) ++recovered;
  std::cout << "\nGround-truth aggressors (simulation): {2, 8, 9, 11}; recovered in\n"
            << ">=2 lists: " << recovered << "/" << truth.size()
            << ". Paper: users 2/8/11 in four lists, user 9 in three; user 8 is\n"
               "the account running these experiments (self-interference).\n";
  return 0;
}
