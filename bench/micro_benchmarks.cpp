// google-benchmark microbenchmarks for the substrates: topology path
// construction, adaptive path choice, flow-model transfers, background
// routing, counter synthesis, packet DES throughput, GBR fitting, and
// attention training steps. These quantify the engineering claims in
// DESIGN.md (e.g. "one campaign step in well under a millisecond").
#include <benchmark/benchmark.h>

#include <cmath>
#include <thread>

#include "analysis/forecast.hpp"
#include "api/session.hpp"
#include "apps/registry.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "exec/exec.hpp"
#include "ml/attention.hpp"
#include "ml/compiled.hpp"
#include "ml/gbr.hpp"
#include "ml/rfe.hpp"
#include "mon/counter_model.hpp"
#include "net/flow_model.hpp"
#include "net/packet_sim.hpp"
#include "sched/allocator.hpp"
#include "sim/campaign.hpp"
#include "sim/cluster.hpp"
#include "synthetic.hpp"

namespace {

using namespace dfv;

const net::Topology& cori() {
  static const net::Topology topo(net::DragonflyConfig::cori());
  return topo;
}

void BM_TopologyConstructCori(benchmark::State& state) {
  for (auto _ : state) {
    net::Topology topo(net::DragonflyConfig::cori());
    benchmark::DoNotOptimize(topo.num_links());
  }
}
BENCHMARK(BM_TopologyConstructCori)->Unit(benchmark::kMillisecond);

void BM_MinimalPath(benchmark::State& state) {
  const auto& topo = cori();
  Rng rng(1);
  const int R = topo.config().num_routers();
  for (auto _ : state) {
    const auto src = net::RouterId(rng.uniform_index(R));
    const auto dst = net::RouterId(rng.uniform_index(R));
    benchmark::DoNotOptimize(topo.minimal_path(src, dst, 0));
  }
}
BENCHMARK(BM_MinimalPath);

void BM_UgalChoice(benchmark::State& state) {
  const auto& topo = cori();
  net::PathChooser chooser(topo);
  std::vector<double> load(std::size_t(topo.num_links()), 1e8);
  Rng rng(2);
  const int R = topo.config().num_routers();
  for (auto _ : state) {
    const auto src = net::RouterId(rng.uniform_index(R));
    const auto dst = net::RouterId(rng.uniform_index(R));
    benchmark::DoNotOptimize(
        chooser.choose(src, dst, net::RoutingPolicy::Ugal, load, rng));
  }
}
BENCHMARK(BM_UgalChoice);

void BM_FlowTransferMilcStep(benchmark::State& state) {
  const auto& topo = cori();
  const net::FlowModel flow(topo);
  sched::NodeAllocator alloc(topo);
  Rng rng(3);
  const auto placement =
      sched::make_placement(alloc.allocate(128, sched::AllocPolicy::Clustered, rng), topo);
  const auto milc = apps::make_milc(128);
  const auto spec = milc->step(40, placement, topo, rng);
  net::RateLoads bg;
  bg.resize(topo);
  for (auto _ : state) {
    Rng r(4);
    benchmark::DoNotOptimize(
        flow.transfer(spec.phases[0].demands, net::RoutingPolicy::Ugal, bg, r));
  }
}
BENCHMARK(BM_FlowTransferMilcStep)->Unit(benchmark::kMicrosecond);

void BM_BackgroundRoute512NodeJob(benchmark::State& state) {
  const auto& topo = cori();
  const net::FlowModel flow(topo);
  sched::NodeAllocator alloc(topo);
  Rng rng(5);
  const auto placement =
      sched::make_placement(alloc.allocate(512, sched::AllocPolicy::Clustered, rng), topo);
  sched::TrafficSpec spec;
  spec.net_bytes_per_node_per_s = 1e9;
  const auto demands = sched::generate_background_demands(
      placement, spec, {}, topo, rng);
  for (auto _ : state) {
    net::RateLoads out;
    out.resize(topo);
    Rng r(6);
    flow.route_background(demands, net::RoutingPolicy::Ugal, 1.0, r, out);
    benchmark::DoNotOptimize(out.link_rate.data());
  }
}
BENCHMARK(BM_BackgroundRoute512NodeJob)->Unit(benchmark::kMicrosecond);

void BM_CounterSynthesis128Routers(benchmark::State& state) {
  const auto& topo = cori();
  const mon::CounterModel model(topo);
  net::RateLoads bg;
  bg.resize(topo);
  net::ByteLoads job;
  job.resize(topo);
  std::vector<net::RouterId> routers;
  for (int r = 0; r < 128; ++r) routers.push_back(net::RouterId(r * 3));
  for (auto _ : state)
    benchmark::DoNotOptimize(model.aggregate(routers, bg, job, 7.0));
}
BENCHMARK(BM_CounterSynthesis128Routers)->Unit(benchmark::kMicrosecond);

void BM_PacketSimUniform(benchmark::State& state) {
  const net::Topology topo(net::DragonflyConfig::small(6));
  for (auto _ : state) {
    net::PacketSimParams params;
    net::PacketSim sim(topo, params, 7);
    benchmark::DoNotOptimize(sim.run_synthetic(net::TrafficPattern::Uniform, 0.2, 50));
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * 50 *
                          net::DragonflyConfig::small(6).num_routers());
}
BENCHMARK(BM_PacketSimUniform)->Unit(benchmark::kMillisecond);

void BM_GbrFit(benchmark::State& state) {
  Rng rng(8);
  ml::Matrix x(4000, 13);
  std::vector<double> y(4000);
  for (std::size_t i = 0; i < 4000; ++i) {
    for (std::size_t c = 0; c < 13; ++c) x(i, c) = rng.normal();
    y[i] = x(i, 3) * 2.0 + std::sin(x(i, 7));
  }
  for (auto _ : state) {
    ml::GradientBoostedRegressor gbr;
    gbr.fit(x, y);
    benchmark::DoNotOptimize(gbr.predict_one(x.row(0)));
  }
}
BENCHMARK(BM_GbrFit)->Unit(benchmark::kMillisecond);

void BM_TreeFitNode(benchmark::State& state) {
  // Cost of growing one boosted-depth tree; items = nodes built, so the
  // per-node rate isolates the histogram build + split scan from the
  // fixed binning cost.
  Rng rng(12);
  ml::Matrix x(4000, 13);
  std::vector<double> y(4000);
  std::vector<std::size_t> idx(4000);
  for (std::size_t i = 0; i < 4000; ++i) {
    idx[i] = i;
    for (std::size_t c = 0; c < 13; ++c) x(i, c) = rng.normal();
    y[i] = x(i, 3) * 2.0 + std::sin(x(i, 7)) + 0.1 * rng.normal();
  }
  ml::TreeParams params;
  params.max_depth = 6;
  params.min_samples_leaf = 15;
  std::size_t nodes = 0;
  for (auto _ : state) {
    ml::RegressionTree tree;
    tree.fit(x, y, idx, params);
    nodes += tree.node_count();
    benchmark::DoNotOptimize(tree.predict_one(x.row(0)));
  }
  state.SetItemsProcessed(std::int64_t(nodes));
}
BENCHMARK(BM_TreeFitNode)->Unit(benchmark::kMillisecond);

void BM_GbrFitBinned(benchmark::State& state) {
  // The boosting loop alone on a prebuilt BinnedDataset (the shared
  // bin-once path every RFE stage/fold takes); contrast with BM_GbrFit,
  // which pays the one-time binning inside the loop as well.
  Rng rng(8);
  ml::Matrix x(4000, 13);
  std::vector<double> y(4000);
  std::vector<std::size_t> rows(4000);
  for (std::size_t i = 0; i < 4000; ++i) {
    rows[i] = i;
    for (std::size_t c = 0; c < 13; ++c) x(i, c) = rng.normal();
    y[i] = x(i, 3) * 2.0 + std::sin(x(i, 7));
  }
  const ml::GbrParams params;
  const ml::BinnedDataset binned(x, params.tree.histogram_bins);
  const ml::FeatureMask mask = ml::FeatureMask::all(13);
  for (auto _ : state) {
    ml::GradientBoostedRegressor gbr(params);
    gbr.fit(binned, y, rows, mask);
    benchmark::DoNotOptimize(gbr.predict_binned(binned, 0));
  }
}
BENCHMARK(BM_GbrFitBinned)->Unit(benchmark::kMillisecond);

void BM_RfeCv(benchmark::State& state) {
  // The full deviation-prediction inner loop (RFE + 10-fold CV) at the
  // default `dfv deviation` parameters on a 13-counter design matrix —
  // the dominant compute of fig09/fig11.
  Rng rng(11);
  ml::Matrix x(1200, 13);
  std::vector<double> y(1200), offset(1200, 40.0);
  std::vector<std::size_t> groups(1200);
  for (std::size_t i = 0; i < 1200; ++i) {
    groups[i] = i / 30;  // 40 "runs" of 30 steps
    for (std::size_t c = 0; c < 13; ++c) x(i, c) = rng.normal();
    y[i] = 3.0 * x(i, 2) + std::sin(2.0 * x(i, 5)) + 0.2 * rng.normal();
  }
  ml::RfeParams params;  // defaults below match analysis::DeviationConfig
  params.folds = 10;
  params.gbr.n_trees = 60;
  params.gbr.learning_rate = 0.10;
  params.gbr.subsample = 0.40;
  params.gbr.tree.max_depth = 4;
  params.gbr.tree.min_samples_leaf = 15;
  for (auto _ : state) {
    const auto res = ml::rfe_cv(x, y, params, offset, groups);
    benchmark::DoNotOptimize(res.relevance.data());
  }
}
BENCHMARK(BM_RfeCv)->Unit(benchmark::kMillisecond);

void BM_AttentionEpoch(benchmark::State& state) {
  Rng rng(9);
  const int m = 30, F = 23;
  ml::Matrix x(2000, std::size_t(m * F));
  std::vector<double> y(2000);
  for (std::size_t i = 0; i < 2000; ++i) {
    for (std::size_t c = 0; c < std::size_t(m * F); ++c) x(i, c) = rng.normal();
    y[i] = rng.normal();
  }
  ml::AttentionParams params;
  params.epochs = 1;
  for (auto _ : state) {
    ml::AttentionForecaster model(m, F, params);
    model.fit(x, y);
    benchmark::DoNotOptimize(model.predict_one(x.row(0)));
  }
}
BENCHMARK(BM_AttentionEpoch)->Unit(benchmark::kMillisecond);

// The forecasting-pipeline trio below uses the grid's default training
// configuration (ForecastConfig: d_model=12, d_hidden=16, 30 epochs,
// batch 32) so the recorded numbers track the real fig08/fig10 cost.

const sim::Dataset& forecast_bench_dataset() {
  static const sim::Dataset ds = [] {
    testutil::SyntheticSpec spec;
    spec.runs = 40;
    spec.steps = 30;
    spec.seed = 77;
    return testutil::make_planted_dataset(spec);
  }();
  return ds;
}

void BM_AttentionFit(benchmark::State& state) {
  // One grid cell's worth of training on a realistic window design
  // matrix (m=8, all 23 features) — the dominant kernel of the grid.
  const auto& ds = forecast_bench_dataset();
  analysis::WindowConfig wcfg;
  wcfg.m = 8;
  wcfg.k = 5;
  wcfg.features = analysis::FeatureSet::AppPlacementIoSys;
  const auto wd = analysis::build_windows(ds, wcfg);
  const analysis::ForecastConfig fcfg;
  for (auto _ : state) {
    ml::AttentionForecaster model(wcfg.m, analysis::feature_count(wcfg.features),
                                  fcfg.attention);
    model.fit(wd.x, wd.y);
    benchmark::DoNotOptimize(model.predict_one(wd.x.row(0)));
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(wd.y.size()) * fcfg.attention.epochs);
}
BENCHMARK(BM_AttentionFit)->Unit(benchmark::kMillisecond);

void BM_BuildWindows(benchmark::State& state) {
  // Window-matrix construction across an ablation slice: every feature
  // set at several context lengths, as evaluate_forecast_grid does it.
  const auto& ds = forecast_bench_dataset();
  using analysis::FeatureSet;
  for (auto _ : state) {
    std::size_t windows = 0;
    for (const int m : {2, 4, 8}) {
      for (const FeatureSet fs :
           {FeatureSet::App, FeatureSet::AppPlacement, FeatureSet::AppPlacementIo,
            FeatureSet::AppPlacementIoSys}) {
        analysis::WindowConfig wcfg;
        wcfg.m = m;
        wcfg.k = 5;
        wcfg.features = fs;
        const auto wd = analysis::build_windows(ds, wcfg);
        windows += wd.y.size();
        benchmark::DoNotOptimize(wd.x.data());
      }
    }
    benchmark::DoNotOptimize(windows);
  }
}
BENCHMARK(BM_BuildWindows)->Unit(benchmark::kMillisecond);

void BM_ForecastGrid(benchmark::State& state) {
  // A small fig-8-shaped ablation grid end to end (CV folds included):
  // the unit of work this PR's fast path is judged on.
  const auto& ds = forecast_bench_dataset();
  using analysis::FeatureSet;
  std::vector<analysis::WindowConfig> cells;
  for (const int m : {2, 8})
    for (const int k : {1, 5})
      for (const FeatureSet fs : {FeatureSet::App, FeatureSet::AppPlacementIoSys})
        cells.push_back({m, k, fs});
  analysis::ForecastConfig fcfg;
  fcfg.folds = 3;
  for (auto _ : state) {
    const auto grid = analysis::evaluate_forecast_grid(ds, cells, fcfg);
    benchmark::DoNotOptimize(grid.data());
  }
}
BENCHMARK(BM_ForecastGrid)->Unit(benchmark::kMillisecond);

// ---- compiled inference (ROADMAP item 3) ----------------------------------
//
// The serve-side budget: >= 100k deviation predictions/sec/core and
// sub-millisecond single-forecast latency. These benches measure the
// CompiledGbr/CompiledAttention fast path on the same model shapes the
// deviation and forecast pipelines serve; scripts/bench.sh ml-predict
// records them in BENCH_ml.json.

/// Fitted GBR at the deviation-pipeline shape (fit once; the benches
/// below measure inference only).
class GbrPredictBench {
 public:
  GbrPredictBench()
      : x(make_design(y)), binned(x, params.tree.histogram_bins), gbr(params) {
    rows.resize(x.rows());
    for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = i;
    gbr.fit(binned, y, rows, ml::FeatureMask::all(x.cols()));
  }

  std::vector<double> y;  ///< filled by make_design (declared before x)
  ml::Matrix x;
  std::vector<std::size_t> rows;
  ml::GbrParams params;
  ml::BinnedDataset binned;
  ml::GradientBoostedRegressor gbr;

 private:
  static ml::Matrix make_design(std::vector<double>& y_out) {
    Rng rng(8);
    ml::Matrix m(4000, 13);
    y_out.resize(4000);
    for (std::size_t i = 0; i < 4000; ++i) {
      for (std::size_t c = 0; c < 13; ++c) m(i, c) = rng.normal();
      y_out[i] = m(i, 3) * 2.0 + std::sin(m(i, 7));
    }
    return m;
  }
};

const GbrPredictBench& gbr_predict_bench() {
  static const GbrPredictBench b;
  return b;
}

void BM_GbrPredictOne(benchmark::State& state) {
  const GbrPredictBench& b = gbr_predict_bench();
  const ml::CompiledGbr compiled = b.gbr.compile();
  std::size_t r = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(compiled.predict_one(b.x.row(r)));
    r = r + 1 == b.x.rows() ? 0 : r + 1;
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_GbrPredictOne)->Unit(benchmark::kMicrosecond);

void BM_GbrPredictMany(benchmark::State& state) {
  // The RFE/deviation batch shape: every row of the binned view in one
  // predict_many call (items/sec is the headline predictions-per-second
  // number).
  const GbrPredictBench& b = gbr_predict_bench();
  const ml::CompiledGbr compiled = b.gbr.compile();
  for (auto _ : state) {
    const std::vector<double> out = compiled.predict_many(b.binned, b.rows);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(b.rows.size()));
}
BENCHMARK(BM_GbrPredictMany)->Unit(benchmark::kMicrosecond);

/// Fitted attention forecaster at the fig08 grid shape (m=8, all 23
/// features), compiled once.
struct AttnPredictBench {
  analysis::WindowData wd;
  ml::AttentionForecaster model;
  ml::CompiledAttention compiled;

  AttnPredictBench(analysis::WindowData w, ml::AttentionForecaster mod)
      : wd(std::move(w)), model(std::move(mod)), compiled(model.compile()) {}
};

const AttnPredictBench& attn_predict_bench() {
  static const AttnPredictBench* b = [] {
    const auto& ds = forecast_bench_dataset();
    analysis::WindowConfig wcfg;
    wcfg.m = 8;
    wcfg.k = 5;
    wcfg.features = analysis::FeatureSet::AppPlacementIoSys;
    analysis::WindowData wd = analysis::build_windows(ds, wcfg);
    const analysis::ForecastConfig fcfg;
    ml::AttentionForecaster model(wcfg.m, analysis::feature_count(wcfg.features),
                                  fcfg.attention);
    model.fit(wd.x, wd.y);
    return new AttnPredictBench(std::move(wd), std::move(model));
  }();
  return *b;
}

void BM_AttentionPredictOne(benchmark::State& state) {
  // The serve ForecastRequest inner call: one window through the
  // pre-packed forward pass with a resident scratch arena.
  const AttnPredictBench& b = attn_predict_bench();
  ml::CompiledAttention::Scratch ws;
  std::size_t r = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(b.compiled.predict_one(b.wd.x.row(r), ws));
    r = r + 1 == b.wd.x.rows() ? 0 : r + 1;
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_AttentionPredictOne)->Unit(benchmark::kMicrosecond);

void BM_AttentionPredictMany(benchmark::State& state) {
  // The forecast-eval batch shape: every window of the dataset in one
  // slab-batched predict_many call.
  const AttnPredictBench& b = attn_predict_bench();
  const auto ptrs = ml::row_pointers(b.wd.x);
  const ml::RowBatch rb{ptrs, 1, b.wd.x.cols(), b.wd.x.cols()};
  for (auto _ : state) {
    const std::vector<double> out = b.compiled.predict_many(rb);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(b.wd.x.rows()));
}
BENCHMARK(BM_AttentionPredictMany)->Unit(benchmark::kMicrosecond);

api::Session& forecast_bench_session() {
  // The serve shard shape: one resident campaign + pinned forecaster;
  // the first request pays campaign generation and model training, so
  // build (and warm) outside the timed loop.
  static api::Session* session = [] {
    set_log_level(LogLevel::Warn);
    api::SessionOptions opt;
    sim::CampaignConfig cfg = sim::CampaignConfig::small(2026);
    cfg.days = 8;
    cfg.datasets = {{"MILC", 128}};
    opt.config = cfg;
    auto* s = new api::Session(std::move(opt));
    const api::Response warm = s->handle(api::ForecastRequest{}.center(10).m(10).k(20));
    DFV_CHECK(!std::holds_alternative<api::ErrorResponse>(warm));
    return s;
  }();
  return *session;
}

void BM_ForecastOne(benchmark::State& state) {
  // End-to-end Session::handle(ForecastRequest) — the dfv serve hot path
  // minus the socket: cache lookups, window gather, compiled predict,
  // persistence baseline.
  api::Session& session = forecast_bench_session();
  std::uint64_t i = 0;
  for (auto _ : state) {
    const api::Response resp = session.handle(api::ForecastRequest{}
                                                  .run(std::uint32_t(i % 8))
                                                  .center(10 + int(i % 20))
                                                  .m(10)
                                                  .k(20));
    benchmark::DoNotOptimize(&resp);
    ++i;
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_ForecastOne)->Unit(benchmark::kMicrosecond);

void BM_ClusterMilcStep(benchmark::State& state) {
  // One full instrumented MILC-128 run on a loaded Cori: the unit of
  // campaign generation (~80 steps per iteration here).
  for (auto _ : state) {
    state.PauseTiming();
    sim::Cluster cluster(net::DragonflyConfig::cori(), {},
                         sched::default_user_population(24), 10);
    cluster.slurm().advance_to(86400.0);
    const auto milc = apps::make_milc(128);
    state.ResumeTiming();
    benchmark::DoNotOptimize(cluster.run_app(*milc));
  }
}
BENCHMARK(BM_ClusterMilcStep)->Unit(benchmark::kMillisecond)->Iterations(3);

// parallel_scaling: the same work at different dfv::exec pool widths.
// Output is bit-identical for every width (the determinism contract);
// only wall-clock changes. The `hw_cores` counter names the machine's
// concurrency so speedups are read against what the hardware can give —
// widths past hw_cores measure oversubscription overhead, not speedup.

void BM_ParallelScalingCampaign(benchmark::State& state) {
  set_log_level(LogLevel::Warn);
  exec::ThreadPool::instance().resize(int(state.range(0)));
  const sim::CampaignConfig cfg = sim::CampaignConfig::small_machine(42)
                                      .days(2)
                                      .dataset("MILC", 128)
                                      .build();
  for (auto _ : state) benchmark::DoNotOptimize(sim::run_campaign(cfg));
  state.counters["threads"] = double(state.range(0));
  state.counters["hw_cores"] = double(std::thread::hardware_concurrency());
  exec::ThreadPool::instance().resize(exec::resolve_threads());
}
BENCHMARK(BM_ParallelScalingCampaign)
    ->Name("parallel_scaling/campaign")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_ParallelScalingBackgroundRoute(benchmark::State& state) {
  exec::ThreadPool::instance().resize(int(state.range(0)));
  const auto& topo = cori();
  const net::FlowModel flow(topo);
  sched::NodeAllocator alloc(topo);
  Rng rng(5);
  const auto placement =
      sched::make_placement(alloc.allocate(512, sched::AllocPolicy::Clustered, rng), topo);
  sched::TrafficSpec spec;
  spec.net_bytes_per_node_per_s = 1e9;
  const auto demands = sched::generate_background_demands(placement, spec, {}, topo, rng);
  for (auto _ : state) {
    net::RateLoads out;
    out.resize(topo);
    Rng r(6);
    flow.route_background(demands, net::RoutingPolicy::Ugal, 1.0, r, out);
    benchmark::DoNotOptimize(out.link_rate.data());
  }
  state.counters["threads"] = double(state.range(0));
  state.counters["hw_cores"] = double(std::thread::hardware_concurrency());
  exec::ThreadPool::instance().resize(exec::resolve_threads());
}
BENCHMARK(BM_ParallelScalingBackgroundRoute)
    ->Name("parallel_scaling/background_route")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
