// Figure 8: forecasting MAPE for the AMG 128- and 512-node datasets for
// m = {3, 8} (temporal context) and k = {5, 10} (horizon), with feature
// sets {app, app+placement}. Paper: larger m lowers MAPE significantly;
// larger k amortizes bursts; 512-node errors slightly higher; placement
// features give no significant improvement (io/sys omitted: overfitting).
#include <iostream>

#include "analysis/forecast.hpp"
#include "bench_common.hpp"
#include "common/table.hpp"

int main() {
  using namespace dfv;
  bench::print_header("Figure 8", "Forecasting MAPE: AMG, m={3,8}, k={5,10}");
  auto study = bench::make_study();

  analysis::ForecastConfig fcfg;  // defaults: 3-fold run-grouped CV
  for (int nodes : {128, 512}) {
    std::cout << "AMG " << nodes << " nodes:\n";
    Table t({"m", "k", "features", "attention MAPE (%)", "persistence (%)", "mean (%)"});
    for (int k : {5, 10})
      for (int m : {3, 8})
        for (auto fs : {analysis::FeatureSet::App, analysis::FeatureSet::AppPlacement}) {
          const analysis::WindowConfig wcfg{m, k, fs};
          const auto eval = study.forecast("AMG", nodes, wcfg, fcfg);
          t.add_row({std::to_string(m), std::to_string(k), analysis::to_string(fs),
                     format_double(eval.mape_attention, 2),
                     format_double(eval.mape_persistence, 2),
                     format_double(eval.mape_mean, 2)});
        }
    std::cout << t.str() << "\n";
  }
  std::cout << "Shape to match: MAPE drops with larger m and larger k; placement\n"
               "features change little; all cells in the low-single-digit to ~10%\n"
               "range as in the paper's Fig. 8.\n";
  return 0;
}
