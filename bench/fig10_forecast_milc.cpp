// Figure 10: forecasting MAPE for the MILC 128- and 512-node datasets
// for m = {10, 30}, k = {20, 40} and the cumulative feature sets
// {app, +placement, +io, +sys}. Paper: same m/k trends as AMG, and —
// unlike AMG — adding io and sys features successively lowers the error
// because MILC is bandwidth-bound and feels system-wide I/O traffic.
#include <iostream>

#include "analysis/forecast.hpp"
#include "bench_common.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

int main() {
  using namespace dfv;
  bench::print_header("Figure 10",
                      "Forecasting MAPE: MILC, m={10,30}, k={20,40}, feature ablation");
  auto study = bench::make_study();

  analysis::ForecastConfig fcfg;
  const std::vector<analysis::FeatureSet> feature_sets = {
      analysis::FeatureSet::App, analysis::FeatureSet::AppPlacement,
      analysis::FeatureSet::AppPlacementIo, analysis::FeatureSet::AppPlacementIoSys};

  for (int nodes : {128, 512}) {
    std::cout << "MILC " << nodes << " nodes:\n";
    Table t({"m", "k", "features", "attention MAPE (%)", "persistence (%)", "mean (%)"});
    std::vector<double> mape_by_fs(feature_sets.size(), 0.0);
    int cells = 0;
    for (int k : {20, 40})
      for (int m : {10, 30}) {
        for (std::size_t f = 0; f < feature_sets.size(); ++f) {
          const analysis::WindowConfig wcfg{m, k, feature_sets[f]};
          const auto eval = study.forecast("MILC", nodes, wcfg, fcfg);
          t.add_row({std::to_string(m), std::to_string(k),
                     analysis::to_string(feature_sets[f]),
                     format_double(eval.mape_attention, 2),
                     format_double(eval.mape_persistence, 2),
                     format_double(eval.mape_mean, 2)});
          mape_by_fs[f] += eval.mape_attention;
        }
        ++cells;
      }
    std::cout << t.str();
    std::cout << "mean MAPE by feature set:";
    for (std::size_t f = 0; f < feature_sets.size(); ++f)
      std::cout << "  " << analysis::to_string(feature_sets[f]) << "="
                << format_double(mape_by_fs[f] / cells, 2) << "%";
    std::cout << "\n\n";
  }
  std::cout << "Shape to match: larger m and k lower the MAPE; io and sys features\n"
               "successively improve MILC forecasts (system-wide I/O traffic matters\n"
               "for a bandwidth-bound code).\n";
  return 0;
}
