// Placement ablation: the NUM_ROUTERS / NUM_GROUPS features exist
// because fragmentation exposes a job to more shared resources. Sweep
// the victim job's allocation policy on identically loaded machines and
// measure a UMT run's time and placement features under each.
#include <iostream>

#include "apps/registry.hpp"
#include "bench_common.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "sim/cluster.hpp"

int main() {
  using namespace dfv;
  bench::print_header("Ablation: placement fragmentation",
                      "Allocation policy vs. UMT run time (128 nodes, half-loaded machine)");

  net::DragonflyConfig machine = net::DragonflyConfig::small(8);
  machine.nodes_per_router = 4;
  const auto umt = apps::make_umt(128);

  Table t({"victim allocation", "mean total (s)", "mean NUM_ROUTERS", "mean NUM_GROUPS",
           "mean pt_stall", "mean transit"});
  for (auto policy : {sched::AllocPolicy::Packed, sched::AllocPolicy::Clustered,
                      sched::AllocPolicy::Fragmented}) {
    std::vector<double> times, routers, groups, pts, trs;
    for (int trial = 0; trial < 10; ++trial) {
      auto users = sched::default_user_population(6);
      for (auto& u : users) {
        u.min_nodes = std::min(u.min_nodes, 48);
        u.max_nodes = std::min(u.max_nodes, 64);
      }
      sim::ClusterParams params;
      params.max_bg_utilization = 0.5;
      sim::Cluster cluster(machine, params, std::move(users), 500 + std::uint64_t(trial));
      cluster.slurm().advance_to(8 * 3600.0);
      // Same machine state per trial; only the victim's allocation differs.
      cluster.slurm().set_allocation_policy(policy);
      const sim::RunRecord rec = cluster.run_app(*umt);
      times.push_back(rec.total_time_s());
      routers.push_back(double(rec.num_routers));
      groups.push_back(double(rec.num_groups));
      // Congestion exposure of the placement region right after the run.
      const auto placement_view = cluster.congestion(
          [&] {
            std::vector<net::RouterId> rs;
            for (int i = 0; i < rec.num_routers; ++i) rs.push_back(net::RouterId(i));
            return rs;
          }());
      pts.push_back(placement_view.pt_stall);
      trs.push_back(placement_view.transit);
    }
    t.add_row({to_string(policy), format_double(stats::mean(times), 1),
               format_double(stats::mean(routers), 1),
               format_double(stats::mean(groups), 1), format_double(stats::mean(pts), 2),
               format_double(stats::mean(trs), 3)});
  }
  std::cout << t.str();
  std::cout << "\nReading: the allocation policy changes the job's shared-resource\n"
               "exposure — fragmented placements span ~2x the routers and groups;\n"
               "packed placements inherit whatever leftover (often busy) region the\n"
               "allocator has. Run time follows the exposure, not the policy name,\n"
               "which is exactly why NUM_ROUTERS / NUM_GROUPS are informative\n"
               "features for the paper's models and why its authors target placement\n"
               "in future work.\n";
  return 0;
}
