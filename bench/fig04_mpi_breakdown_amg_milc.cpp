// Figure 4: time spent in computation vs. communication and in the
// dominant MPI routines for AMG and MILC on 512 nodes (best / average /
// worst run). Paper: AMG ~82% MPI at 512 nodes (Iprobe, Test, Testall,
// Waitall, Allreduce); MILC ~89% MPI (Allreduce, Wait, Isend, Irecv);
// compute time barely varies (no OS noise), MPI time varies a lot.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace dfv;
  bench::print_header("Figure 4",
                      "Compute/MPI split and MPI routine breakdown: AMG & MILC, 512 nodes");
  auto study = bench::make_study();
  bench::print_mpi_breakdown(study.dataset("AMG", 512));
  bench::print_mpi_breakdown(study.dataset("MILC", 512));
  std::cout << "Shape to match: MPI time varies strongly between best and worst runs\n"
               "while compute time stays nearly constant; AMG dominated by Iprobe /\n"
               "Test / Testall / Waitall + Allreduce, MILC by Wait / Isend / Irecv +\n"
               "Allreduce.\n";
  return 0;
}
