// Figure 7: the mean per-step trends of counter values mirror the mean
// time-per-step trend (AMG 128 nodes: RT_FLIT_TOT and RT_RB_STL) — the
// motivation for mean-centering both sides before deviation modeling.
#include <iostream>

#include "bench_common.hpp"
#include "common/ascii_plot.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

int main() {
  using namespace dfv;
  bench::print_header("Figure 7",
                      "Mean step-time trend vs. mean counter trends (AMG, 128 nodes)");
  auto study = bench::make_study();
  const sim::Dataset& amg = study.dataset("AMG", 128);

  const auto time_curve = amg.mean_step_curve();
  const auto flit_curve = amg.mean_counter_curve(mon::Counter::RT_FLIT_TOT);
  const auto stall_curve = amg.mean_counter_curve(mon::Counter::RT_RB_STL);

  std::cout << line_plot({Series{"time/step", time_curve}},
                         {.width = 60, .height = 9,
                          .title = "Mean time per step (s)", .x_label = "step"})
            << "\n";
  std::cout << line_plot({Series{"RT_FLIT_TOT", flit_curve}},
                         {.width = 60, .height = 9,
                          .title = "Mean RT_FLIT_TOT per step", .x_label = "step"})
            << "\n";
  std::cout << line_plot({Series{"RT_RB_STL", stall_curve}},
                         {.width = 60, .height = 9,
                          .title = "Mean RT_RB_STL per step", .x_label = "step"})
            << "\n";

  Table t({"pair", "Pearson correlation of mean curves"});
  t.add_row({"time vs RT_FLIT_TOT", format_double(stats::pearson(time_curve, flit_curve), 3)});
  t.add_row({"time vs RT_RB_STL", format_double(stats::pearson(time_curve, stall_curve), 3)});
  std::cout << t.str();
  std::cout << "\nShape to match: all three mean curves share the same step-wise trend\n"
               "(high positive correlation), which is why the deviation analysis\n"
               "removes the per-step mean from both counters and times.\n";
  return 0;
}
