// VC/buffer ablation (credit-based DES): how input-buffer depth and the
// number of virtual channels shape latency and the credit-stall counters
// that the Table II PT/RT_*_STL_* hardware counters measure. The classic
// result: shallow buffers back-pressure early (stalls explode, latency
// rises); extra VCs help until the buffer budget is the binding limit.
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "net/vc_sim.hpp"

int main() {
  using namespace dfv;
  bench::print_header("Ablation: VC count and buffer depth",
                      "Credit-based DES, uniform traffic at 0.6 offered load");

  const net::Topology topo(net::DragonflyConfig::small(6));

  std::cout << "buffer-depth sweep (8 VCs):\n";
  Table bt({"buffer (flits/VC)", "mean latency (us)", "p99 (us)",
            "stall cycles (1e6)", "deadlocked"});
  for (int buffer : {4, 8, 16, 48, 128}) {
    net::VcSimParams params;
    params.buffer_flits = buffer;
    net::VcPacketSim sim(topo, params, 11);
    const auto s = sim.run_synthetic(net::TrafficPattern::Uniform, 0.6, 250);
    bt.add_row({std::to_string(buffer), format_double(s.mean_latency * 1e6, 2),
                format_double(s.p99_latency * 1e6, 2),
                format_double(s.total_stall_cycles() / 1e6, 2),
                s.deadlocked ? "YES" : "no"});
  }
  std::cout << bt.str() << "\n";

  std::cout << "VC-count sweep (16 flits/VC):\n";
  Table vt({"VCs", "mean latency (us)", "p99 (us)", "stall cycles (1e6)", "deadlocked"});
  for (int vcs : {2, 4, 8, 12}) {
    net::VcSimParams params;
    params.vcs = vcs;
    params.buffer_flits = 16;
    net::VcPacketSim sim(topo, params, 13);
    const auto s = sim.run_synthetic(net::TrafficPattern::Uniform, 0.6, 250);
    vt.add_row({std::to_string(vcs), format_double(s.mean_latency * 1e6, 2),
                format_double(s.p99_latency * 1e6, 2),
                format_double(s.total_stall_cycles() / 1e6, 2),
                s.deadlocked ? "YES" : "no"});
  }
  std::cout << vt.str();
  std::cout << "\nExpected shape: latency and credit stalls fall as buffers deepen,\n"
               "with diminishing returns; very few VCs risk head-of-line blocking\n"
               "and (below the hop count) deadlock.\n";
  return 0;
}
