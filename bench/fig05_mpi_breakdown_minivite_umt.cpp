// Figure 5: compute/MPI split and routine breakdown for miniVite and UMT
// on 128 nodes. Paper: miniVite >98% MPI, almost all in Waitall, slowest
// run 3.76x the best; UMT only ~30% MPI (Allreduce, Barrier, Wait) yet
// the slowest run is 3.3x the best.
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"

int main() {
  using namespace dfv;
  bench::print_header(
      "Figure 5", "Compute/MPI split and MPI routine breakdown: miniVite & UMT, 128 nodes");
  auto study = bench::make_study();
  bench::print_mpi_breakdown(study.dataset("miniVite", 128));
  bench::print_mpi_breakdown(study.dataset("UMT", 128));

  // The worst/best ratios the paper calls out.
  Table t({"dataset", "worst / best total time", "paper"});
  for (const char* app : {"miniVite", "UMT"}) {
    const auto& ds = study.dataset(app, 128);
    double best = 1e300, worst = 0.0;
    for (const auto& run : ds.runs) {
      best = std::min(best, run.total_time_s());
      worst = std::max(worst, run.total_time_s());
    }
    t.add_row({app, format_double(worst / best, 2) + "x",
               std::string(app) == "miniVite" ? "3.76x" : "3.3x"});
  }
  std::cout << t.str();
  return 0;
}
