// Table II: the Aries network hardware performance counters used in the
// study (raw and derived).
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "mon/counters.hpp"

int main() {
  using namespace dfv;
  bench::print_header("Table II", "Network hardware performance counter catalog");

  Table t({"Counter name", "Abbreviation", "Description"});
  for (int c = 0; c < mon::kNumCounters; ++c) {
    const auto& info = mon::counter_info(mon::counter_from_index(c));
    t.add_row({info.aries_name, info.abbrev, info.description});
  }
  std::cout << t.str();

  std::cout << "\nLDMS-derived system-wide aggregates used by the forecasting models:\n";
  Table l({"Feature", "Scope"});
  for (const char* n : mon::ldms_io_feature_names())
    l.add_row({n, "routers serving filesystem (I/O) nodes"});
  for (const char* n : mon::ldms_sys_feature_names())
    l.add_row({n, "routers sharing no nodes with the job"});
  std::cout << l.str();
  std::cout << "\nNote: the paper's printed Table II describes RT_PKT_TOT/PT_PKT_TOT as\n"
               "stall sums — a typesetting erratum; both are packet totals here (see\n"
               "EXPERIMENTS.md).\n";
  return 0;
}
