// Figure 11: feature importances derived from the forecasting models for
// AMG (m=8, k=10; app+placement) and MILC (m=30, k=40; all features).
// Paper: for AMG, PT_RB_STL_RS and flit counters gain relevance relative
// to the deviation analysis; for MILC, the I/O flit counter
// (IO_PT_FLIT_TOT) has the highest relevance — I/O traffic is a strong
// predictor of MILC's future performance.
#include <iostream>

#include "analysis/forecast.hpp"
#include "bench_common.hpp"
#include "common/ascii_plot.hpp"

int main() {
  using namespace dfv;
  bench::print_header("Figure 11", "Forecasting-model feature importances (AMG & MILC)");
  auto study = bench::make_study();
  analysis::ForecastConfig fcfg;

  for (int nodes : {128, 512}) {
    const analysis::WindowConfig wcfg{8, 10, analysis::FeatureSet::AppPlacement};
    const auto imp = study.forecast_importance("AMG", nodes, wcfg, fcfg);
    std::cout << bar_chart(analysis::feature_names(wcfg.features), imp, 48,
                           "AMG " + std::to_string(nodes) +
                               " nodes (m=8, k=10, app+placement): permutation importance")
              << "\n";
  }
  for (int nodes : {128, 512}) {
    const analysis::WindowConfig wcfg{30, 40, analysis::FeatureSet::AppPlacementIoSys};
    const auto imp = study.forecast_importance("MILC", nodes, wcfg, fcfg);
    std::cout << bar_chart(analysis::feature_names(wcfg.features), imp, 48,
                           "MILC " + std::to_string(nodes) +
                               " nodes (m=30, k=40, all features): permutation importance")
              << "\n";
  }
  std::cout << "Shape to match: for MILC the io features (IO_PT_FLIT_TOT) rank at or\n"
               "near the top; job-router counters still matter but less than in the\n"
               "deviation analysis.\n";
  return 0;
}
