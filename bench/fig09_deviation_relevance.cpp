// Figure 9: relevance scores of each counter in predicting the deviation
// from mean behavior, per dataset (RFE + GBR, 10-fold CV). The paper's
// pattern: RT_RB_STL tops MILC (both scales) and matters for AMG-512;
// PT_RB_STL_RQ / PT_RB_2X_USG matter for AMG; PT_RB_STL_RQ dominates
// UMT; flit counters (PT_FLIT_VC0, RT_FLIT_TOT) dominate miniVite.
// MAPE of the prediction models was below 5% for all datasets.
#include <iostream>

#include "analysis/deviation.hpp"
#include "apps/registry.hpp"
#include "bench_common.hpp"
#include "common/ascii_plot.hpp"
#include "common/table.hpp"

int main() {
  using namespace dfv;
  bench::print_header("Figure 9",
                      "Counter relevance for deviation prediction (RFE + GBR, 10-fold CV)");
  auto study = bench::make_study();

  std::vector<std::string> labels;
  for (int c = 0; c < mon::kNumCounters; ++c)
    labels.emplace_back(mon::counter_name(mon::counter_from_index(c)));

  Table mape_t({"dataset", "samples", "GBR CV MAPE (%)", "linear baseline MAPE (%)"});
  for (const auto& spec : apps::paper_datasets()) {
    const auto res = study.deviation(spec.app, spec.nodes);
    std::cout << bar_chart(labels, res.survival, 48,
                           spec.label() + ": relevance (RFE survival score, 10-fold CV)")
              << "\n";
    // Secondary view: likelihood of membership in the best RFE subset.
    std::cout << "  in-best-subset likelihood:";
    for (int c = 0; c < mon::kNumCounters; ++c)
      if (res.relevance[std::size_t(c)] >= 0.5)
        std::cout << ' ' << labels[std::size_t(c)] << '='
                  << format_double(res.relevance[std::size_t(c)], 2);
    std::cout << "\n\n";
    mape_t.add_row({spec.label(), std::to_string(res.samples),
                    format_double(res.cv_mape, 2), format_double(res.cv_mape_linear, 2)});
  }
  std::cout << mape_t.str();
  std::cout << "\nPaper: MAPE < 5% for all datasets; the linear baseline (Groves et al.\n"
               "2017) is the related-work comparator. Pattern to match: stall counters\n"
               "(RT_RB_STL) for MILC and AMG-512, endpoint stalls (PT_RB_STL_RQ) for\n"
               "UMT and AMG, flit counters for miniVite.\n";
  return 0;
}
