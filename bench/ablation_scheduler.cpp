// Congestion-aware scheduling ablation: the paper's future-work proposal
// quantified. Run the same MILC job stream under (a) immediate admission,
// (b) the blame gate (Table III users), (c) blame + congestion-probe
// gates, and compare run-time distributions and the queueing delay paid.
#include <iostream>

#include "apps/registry.hpp"
#include "bench_common.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "sched/workload.hpp"
#include "sim/congestion_aware.hpp"

namespace {

using namespace dfv;

sim::Cluster make_cluster(std::uint64_t seed) {
  net::DragonflyConfig machine = net::DragonflyConfig::small(8);
  machine.nodes_per_router = 4;
  auto users = sched::default_user_population(6);
  for (auto& u : users) {
    u.min_nodes = std::min(u.min_nodes, 48);
    u.max_nodes = std::min(u.max_nodes, 96);
  }
  sim::ClusterParams params;
  params.max_bg_utilization = 0.6;
  return sim::Cluster(machine, params, std::move(users), seed);
}

}  // namespace

int main() {
  using namespace dfv;
  bench::print_header("Ablation: congestion-aware scheduling",
                      "Immediate vs. blame-gated vs. blame+probe admission (MILC, 128 nodes)");

  const auto milc = apps::make_milc(128);
  const int trials = 10;

  struct PolicyRow {
    const char* name;
    sim::CongestionAwarePolicy policy;
  };
  sim::CongestionAwarePolicy none;
  none.blamed_users = {};
  none.max_predicted_slowdown = 0.0;  // disabled: admit immediately
  sim::CongestionAwarePolicy blame;
  blame.blamed_users = sched::ground_truth_aggressors();
  blame.min_blamed_nodes = 48;
  blame.max_predicted_slowdown = 0.0;
  sim::CongestionAwarePolicy full = blame;
  full.max_predicted_slowdown = 1.30;

  const PolicyRow rows[] = {{"immediate", none}, {"blame gate", blame},
                            {"blame + probe", full}};

  Table t({"admission policy", "mean run (s)", "p90 run (s)", "mean wait (h)",
           "mean run+wait (s)"});
  for (const auto& row : rows) {
    std::vector<double> runs, waits;
    for (int trial = 0; trial < trials; ++trial) {
      sim::Cluster cluster = make_cluster(900 + std::uint64_t(trial));
      cluster.slurm().advance_to(8 * 3600.0);
      sim::CongestionAwareScheduler sched(cluster, row.policy);
      const sim::AwareRun r = sched.run_when_clear(*milc);
      runs.push_back(r.record.total_time_s());
      waits.push_back(r.decision.waited_s);
    }
    t.add_row({row.name, format_double(stats::mean(runs), 1),
               format_double(stats::percentile(runs, 0.9), 1),
               format_double(stats::mean(waits) / 3600.0, 2),
               format_double(stats::mean(runs) + stats::mean(waits), 1)});
  }
  std::cout << t.str();
  std::cout << "\nReading: gating on the paper's blamed-user list and on a placement\n"
               "congestion probe trades queue wait for shorter, more predictable\n"
               "runs — the quantified version of the paper's scheduling proposal.\n";
  return 0;
}
