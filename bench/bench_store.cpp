// Out-of-core column-store benchmark: generate an N-run longitudinal
// campaign straight into a `dfv::store` directory, then measure the
// properties the store exists for —
//
//   append     rows/s and MB/s through the chunked append + publish path
//   cold open  mmap pin of a committed campaign-store entry vs a full
//              CSV deserialize of the same campaign (the >= 100x claim)
//   ooc train  TrainingView build + GBR fit + RFE over the mmap'd bin
//              codes, with peak RSS read from VmHWM — the resident set
//              must stay a small fraction of the on-disk dataset
//   in-RAM     the same GBR fit over a materialized Matrix (run last so
//              its resident set cannot pollute the out-of-core number),
//              plus a bit-identity check between the two models
//
//   bench_store [--runs N] [--campaign-days D] [--dir PATH] [--json PATH]
//
// Peak-RSS isolation uses /proc/self/clear_refs ("5" resets VmHWM); when
// the kernel refuses the write the numbers are still reported but are
// high-water marks over the whole process, and rss_reset_ok says so.
// scripts/bench.sh store merges the JSON into BENCH_store.json.
#include <malloc.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/log.hpp"
#include "ml/gbr.hpp"
#include "ml/rfe.hpp"
#include "sim/campaign.hpp"
#include "sim/campaign_store.hpp"
#include "sim/dataset.hpp"
#include "store/column_store.hpp"
#include "store/longitudinal.hpp"
#include "store/training_view.hpp"

namespace {

using namespace dfv;
namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

struct Options {
  std::uint64_t runs = 1'000'000;
  int campaign_days = 120;
  std::string dir = std::string(DFV_DEFAULT_CACHE_DIR) + "/bench_store";
  std::string json_path;
};

double secs_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Peak resident set (VmHWM) in MB from /proc/self/status.
double vm_hwm_mb() {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line))
    if (line.rfind("VmHWM:", 0) == 0) return std::stod(line.substr(6)) / 1024.0;
  return 0.0;
}

/// Reset the peak-RSS counter so each phase gets its own high-water mark.
/// Freed-but-retained heap pages from earlier phases would survive the
/// reset (the counter restarts at *current* RSS), so hand them back to
/// the kernel first.
bool reset_peak_rss() {
  malloc_trim(0);
  std::ofstream out("/proc/self/clear_refs");
  if (!out) return false;
  out << "5\n";
  return out.good();
}

std::uint64_t dir_bytes(const std::string& dir) {
  std::uint64_t total = 0;
  for (const auto& e : fs::recursive_directory_iterator(dir))
    if (e.is_regular_file()) total += e.file_size();
  return total;
}

std::string json_number(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      DFV_CHECK_MSG(i + 1 < argc, "bench_store: " << arg << " needs a value");
      return argv[++i];
    };
    if (arg == "--runs") opt.runs = std::stoull(next());
    else if (arg == "--campaign-days") opt.campaign_days = std::stoi(next());
    else if (arg == "--dir") opt.dir = next();
    else if (arg == "--json") opt.json_path = next();
    else DFV_CHECK_MSG(false, "bench_store: unknown argument " << arg);
  }
  DFV_CHECK_MSG(opt.runs >= 1024, "bench_store: --runs must be at least 1024");
  DFV_CHECK_MSG(opt.campaign_days >= 1, "bench_store: --campaign-days must be >= 1");
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::Warn);
  const Options opt = parse_args(argc, argv);

  std::vector<std::pair<std::string, double>> metrics;
  const auto put = [&](const std::string& name, double v) {
    metrics.emplace_back(name, v);
  };

  fs::remove_all(opt.dir);
  fs::create_directories(opt.dir);
  const std::string long_dir = opt.dir + "/longitudinal.store";

  // --- Phase 1: append throughput (generation + chunked appends +
  // publish, the `dfv campaign --append` write path end to end).
  store::LongitudinalSpec spec;
  {
    store::ColumnStore cs = store::open_longitudinal_store(long_dir);
    const auto t0 = Clock::now();
    store::append_longitudinal_runs(cs, spec, 0, opt.runs);
    const double append_s = secs_since(t0);
    DFV_CHECK(cs.rows() == opt.runs);

    const double disk_mb = double(dir_bytes(long_dir)) / (1024.0 * 1024.0);
    put("runs", double(opt.runs));
    put("features", double(store::longitudinal_features().size()));
    put("dataset_disk_mb", disk_mb);
    put("append_s", append_s);
    put("append_runs_per_sec", double(opt.runs) / append_s);
    put("append_mb_per_sec", disk_mb / append_s);
    std::cout << "append: " << opt.runs << " runs in " << append_s << " s ("
              << std::uint64_t(double(opt.runs) / append_s) << " runs/s, " << disk_mb
              << " MB on disk)\n";
  }
  const double dataset_mb = metrics[2].second;

  // --- Phase 2: longitudinal cold open (pin = MANIFEST parse + mmap;
  // no row materialization, so this must not scale with row count).
  {
    constexpr int kReps = 20;
    const auto t0 = Clock::now();
    for (int i = 0; i < kReps; ++i) {
      const auto pin = store::ColumnStore::open_pin(long_dir);
      DFV_CHECK(pin->rows() == opt.runs);
    }
    const double pin_ms = secs_since(t0) * 1e3 / kReps;
    put("pin_open_ms", pin_ms);
    std::cout << "pin open: " << pin_ms << " ms (" << dataset_mb << " MB store)\n";
  }

  // --- Phase 3: out-of-core training over the mmap'd bin codes. Peak
  // RSS is reset first so the number reflects this phase alone.
  const bool rss_reset_ok = reset_peak_rss();
  ml::GradientBoostedRegressor ooc_gbr;  // default GbrParams: the paper config
  {
    const auto pin = store::ColumnStore::open_pin(long_dir);

    store::TrainingSpec tspec;
    tspec.features = store::longitudinal_features();
    tspec.target = store::longitudinal_target();

    // The GBR and RFE stages run in their own scopes so each maps only
    // the codes it trains on: peak RSS is the max working set of any
    // one stage, not the sum of every view held at once.
    double view_s = 0.0, gbr_s = 0.0, rfe_s = 0.0;
    {
      auto t0 = Clock::now();
      const store::TrainingView view = store::TrainingView::build(pin, tspec);
      view_s = secs_since(t0);

      t0 = Clock::now();
      ooc_gbr.fit(view.binned(), view.y(), ml::FeatureMask::all(view.features()));
      gbr_s = secs_since(t0);
    }
    // Hand the boosting stage's freed heap back to the kernel so RFE's
    // allocations reuse address space instead of stacking on top of it;
    // otherwise the phase peak reads as the *sum* of both stages.
    malloc_trim(0);

    // RFE over a 12-feature slice: elimination is quadratic in feature
    // count, so the full 41-feature sweep is a study, not a benchmark.
    store::TrainingSpec rspec = tspec;
    rspec.features.resize(12);
    {
      const auto t0 = Clock::now();
      const store::TrainingView rview = store::TrainingView::build(pin, rspec);
      ml::RfeParams rparams;
      rparams.folds = 2;
      rparams.gbr.n_trees = 12;
      rparams.with_linear_baseline = false;  // needs source(); off out-of-core
      const ml::RfeResult rfe = ml::rfe_cv(rview.binned(), rview.y(), rparams);
      rfe_s = secs_since(t0);
      DFV_CHECK(rfe.relevance.size() == rspec.features.size());
    }

    const double rss_mb = vm_hwm_mb();
    put("view_build_s", view_s);
    put("ooc_gbr_fit_s", gbr_s);
    put("ooc_rfe_s", rfe_s);
    put("ooc_peak_rss_mb", rss_mb);
    put("ooc_rss_pct_of_disk", 100.0 * rss_mb / dataset_mb);
    put("rss_reset_ok", rss_reset_ok ? 1.0 : 0.0);
    std::cout << "ooc: view " << view_s << " s, gbr fit " << gbr_s << " s, rfe "
              << rfe_s << " s, peak RSS " << rss_mb << " MB ("
              << 100.0 * rss_mb / dataset_mb << "% of dataset"
              << (rss_reset_ok ? "" : "; clear_refs unavailable, whole-process HWM")
              << ")\n";
  }

  // --- Phase 4: in-RAM baseline, run last. Materialize the Matrix, fit
  // the same GBR the convenience way, and require bit-identity.
  {
    if (rss_reset_ok) DFV_CHECK(reset_peak_rss());
    const auto pin = store::ColumnStore::open_pin(long_dir);
    const std::vector<std::string> features = store::longitudinal_features();

    auto t0 = Clock::now();
    ml::Matrix x(pin->rows(), features.size());
    for (std::size_t f = 0; f < features.size(); ++f) {
      const auto col = pin->f64(features[f]);
      for (std::size_t r = 0; r < col.size(); ++r) x(r, f) = col[r];
    }
    const auto y = pin->f64(store::longitudinal_target());
    const double load_s = secs_since(t0);

    t0 = Clock::now();
    ml::GradientBoostedRegressor in_ram;
    in_ram.fit(x, y);
    const double fit_s = secs_since(t0);
    const double rss_mb = vm_hwm_mb();

    bool identical = in_ram.tree_count() == ooc_gbr.tree_count();
    const std::size_t stride = std::max<std::size_t>(1, pin->rows() / 512);
    for (std::size_t r = 0; identical && r < pin->rows(); r += stride)
      identical = in_ram.predict_one(x.row(r)) == ooc_gbr.predict_one(x.row(r));
    const auto imp_a = in_ram.feature_importances();
    const auto imp_b = ooc_gbr.feature_importances();
    for (std::size_t f = 0; identical && f < imp_a.size(); ++f)
      identical = imp_a[f] == imp_b[f];

    put("inram_load_s", load_s);
    put("inram_gbr_fit_s", fit_s);
    put("inram_peak_rss_mb", rss_mb);
    put("gbr_bit_identical", identical ? 1.0 : 0.0);
    std::cout << "in-RAM: load " << load_s << " s, gbr fit " << fit_s
              << " s, peak RSS " << rss_mb << " MB, bit-identical: "
              << (identical ? "yes" : "NO") << "\n";
    DFV_CHECK_MSG(identical, "bench_store: out-of-core GBR diverged from in-RAM");
  }

  // --- Phase 5: campaign cold open. One simulated campaign, published
  // both ways; the store entry must pin orders of magnitude faster than
  // the CSV blobs deserialize.
  {
    sim::CampaignConfig cfg = sim::CampaignConfig::small(2026);
    cfg.days = opt.campaign_days;
    cfg.datasets = {{"MILC", 128}, {"UMT", 128}};

    auto t0 = Clock::now();
    const sim::CampaignResult result = sim::run_campaign(cfg);
    const double build_s = secs_since(t0);
    std::size_t campaign_runs = 0;
    for (const auto& ds : result.datasets) campaign_runs += ds.runs.size();

    const std::string store_dir = opt.dir + "/campaign.store";
    const std::string csv_dir = opt.dir + "/campaign.csv";
    DFV_CHECK(sim::save_campaign_store(result, store_dir));
    fs::create_directories(csv_dir);
    std::vector<std::string> csv_paths;
    for (std::size_t i = 0; i < result.datasets.size(); ++i) {
      csv_paths.push_back(csv_dir + "/dataset_" + std::to_string(i) + ".csv");
      DFV_CHECK(sim::save_dataset(result.datasets[i], csv_paths.back()));
    }

    constexpr int kOpenReps = 25;
    t0 = Clock::now();
    for (int i = 0; i < kOpenReps; ++i) {
      const auto pin = sim::CampaignStorePin::open(store_dir);
      DFV_CHECK(pin.num_datasets() == result.datasets.size());
    }
    const double store_ms = secs_since(t0) * 1e3 / kOpenReps;

    double csv_ms = 0.0;
    for (int rep = 0; rep < 2; ++rep) {  // min of two: first read warms the cache
      t0 = Clock::now();
      std::size_t rows = 0;
      for (const std::string& p : csv_paths)
        rows += sim::load_dataset(p, /*require_checksum=*/true).runs.size();
      const double ms = secs_since(t0) * 1e3;
      DFV_CHECK(rows == campaign_runs);
      csv_ms = rep == 0 ? ms : std::min(csv_ms, ms);
    }

    put("campaign_runs", double(campaign_runs));
    put("campaign_build_s", build_s);
    put("cold_open_store_ms", store_ms);
    put("cold_open_csv_ms", csv_ms);
    put("cold_open_speedup", csv_ms / store_ms);
    std::cout << "cold open: store pin " << store_ms << " ms vs CSV deserialize "
              << csv_ms << " ms (" << csv_ms / store_ms << "x, " << campaign_runs
              << " runs)\n";
  }

  if (!opt.json_path.empty()) {
    std::ofstream out(opt.json_path);
    DFV_CHECK_MSG(out.good(), "bench_store: cannot open " << opt.json_path);
    out << "{";
    for (std::size_t i = 0; i < metrics.size(); ++i)
      out << (i ? ",\n  " : "\n  ") << '"' << metrics[i].first
          << "\": " << json_number(metrics[i].second);
    out << "\n}\n";
  }
  return 0;
}
