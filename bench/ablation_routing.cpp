// Routing ablation (packet-level DES): minimal vs. Valiant vs. UGAL
// adaptive routing under uniform, adversarial-shift, and hotspot traffic.
// Context for §II-A: Cray XC routes adaptively, yet variability remains;
// this bench reproduces the classic dragonfly routing trade-offs that
// motivate adaptive routing in the first place.
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "net/packet_sim.hpp"

int main() {
  using namespace dfv;
  bench::print_header("Ablation: routing policies",
                      "Packet-level DES, 9-group tapered dragonfly");

  net::DragonflyConfig cfg = net::DragonflyConfig::small(9);
  cfg.global_ports_per_router = 1;  // tapered global bandwidth
  const net::Topology topo(cfg);

  for (auto pattern : {net::TrafficPattern::Uniform, net::TrafficPattern::AdversarialShift,
                       net::TrafficPattern::Hotspot}) {
    std::cout << "traffic pattern: " << net::to_string(pattern) << " (offered load 0.30)\n";
    Table t({"policy", "mean latency (us)", "p99 latency (us)", "mean hops",
             "throughput (GB/s)"});
    for (auto policy : {net::RoutingPolicy::Minimal, net::RoutingPolicy::Valiant,
                        net::RoutingPolicy::Ugal}) {
      net::PacketSimParams params;
      params.policy = policy;
      net::PacketSim sim(topo, params, 42);
      const auto stats = sim.run_synthetic(pattern, 0.30, 600);
      t.add_row({net::to_string(policy), format_double(stats.mean_latency * 1e6, 2),
                 format_double(stats.p99_latency * 1e6, 2),
                 format_double(stats.mean_hops, 2),
                 format_double(stats.throughput / 1e9, 2)});
    }
    std::cout << t.str() << "\n";
  }
  std::cout << "Expected shape: minimal wins under uniform traffic; adversarial\n"
               "group-shift traffic collapses minimal while Valiant/UGAL keep latency\n"
               "bounded; UGAL tracks the better of the two in each regime.\n";
  return 0;
}
