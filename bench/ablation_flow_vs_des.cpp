// Engine ablation: the fast flow-level model vs. the packet-level DES on
// identical workloads. The campaign generator uses the flow model; this
// bench shows its transfer-time estimates track the DES qualitatively
// (monotone in load, same ordering across traffic intensities).
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "net/flow_model.hpp"
#include "net/packet_sim.hpp"

int main() {
  using namespace dfv;
  bench::print_header("Ablation: flow model vs packet DES",
                      "Transfer-time trends under rising background load");

  // Tapered global bandwidth (1 blue port per router) so uniform traffic
  // can actually saturate the inter-group links within the sweep.
  net::DragonflyConfig cfg = net::DragonflyConfig::small(6);
  cfg.global_ports_per_router = 1;
  const net::Topology topo(cfg);
  const net::FlowModel flow(topo);

  // Workload: 32 concurrent 8 MB transfers between random router pairs.
  Rng rng(7);
  std::vector<net::Demand> demands;
  for (int i = 0; i < 32; ++i) {
    const auto src = net::RouterId(rng.uniform_index(cfg.num_routers()));
    auto dst = net::RouterId(rng.uniform_index(cfg.num_routers()));
    if (dst == src) dst = net::RouterId((dst + 1) % cfg.num_routers());
    demands.push_back({src, dst, 8e6});
  }

  Table t({"background util", "flow-model makespan (ms)", "DES mean latency (us)",
           "DES p99 (us)"});
  double prev_flow = 0.0, prev_des = 0.0;
  bool flow_monotone = true, des_monotone = true;
  for (double bg_util : {0.0, 0.3, 0.6, 0.9, 1.2}) {
    // Flow model: uniform background at the given utilization.
    net::RateLoads bg;
    bg.resize(topo);
    for (int e = 0; e < topo.num_links(); ++e)
      bg.link_rate[std::size_t(e)] = bg_util * topo.link(net::LinkId(e)).capacity;
    for (int r = 0; r < cfg.num_routers(); ++r) {
      bg.inject_rate[std::size_t(r)] = bg_util * cfg.endpoint_bw * 0.5;
      bg.eject_rate[std::size_t(r)] = bg_util * cfg.endpoint_bw * 0.5;
    }
    Rng flow_rng(11);
    const auto xfer = flow.transfer(demands, net::RoutingPolicy::Ugal, bg, flow_rng);

    // DES: Poisson background streams at the same offered utilization
    // over a 30 us window, with the 32 measured transfers injected as
    // packet trains mid-window. Aggregate latency rises with load just
    // as the flow model's makespan does.
    net::PacketSimParams params;
    params.policy = net::RoutingPolicy::Ugal;
    net::PacketSim sim2(topo, params, 13);
    Rng des_rng(17);
    const double window = 30e-6;
    const double pkt_bytes = double(params.packet_flits) * params.flit_bytes;
    if (bg_util > 0.0) {
      const double rate = bg_util * cfg.green_bw / pkt_bytes;
      for (int r = 0; r < cfg.num_routers(); ++r) {
        double tt = 0.0;
        while ((tt += des_rng.exponential(rate)) < window) {
          const auto src = net::RouterId(r);
          auto dst = net::RouterId(des_rng.uniform_index(cfg.num_routers()));
          if (dst == src) dst = net::RouterId((dst + 1) % cfg.num_routers());
          sim2.inject(tt, src, dst);
        }
      }
    }
    for (const auto& d : demands)
      for (int chunk = 0; chunk < 16; ++chunk)
        sim2.inject(window / 2 + chunk * 1e-7, d.src, d.dst);
    const auto stats = sim2.run();

    t.add_row({format_double(bg_util, 1), format_double(xfer.makespan * 1e3, 3),
               format_double(stats.mean_latency * 1e6, 2),
               format_double(stats.p99_latency * 1e6, 2)});
    if (xfer.makespan < prev_flow) flow_monotone = false;
    if (stats.mean_latency < prev_des) des_monotone = false;
    prev_flow = xfer.makespan;
    prev_des = stats.mean_latency;
  }
  std::cout << t.str();
  std::cout << "\nflow model monotone in load: " << (flow_monotone ? "yes" : "NO")
            << "; DES monotone in load: " << (des_monotone ? "yes" : "NO") << "\n"
            << "Both engines agree qualitatively: completion times grow with\n"
               "background utilization, steeply as links approach saturation.\n";
  return 0;
}
