// Figure 1: variation in performance of the four applications relative
// to their respective best observed run times, on 128 nodes, across the
// campaign (Nov/Dec .. Apr). The paper's headline: up to ~3x slowdowns
// for the same executable and input.
#include <algorithm>
#include <iostream>

#include "apps/registry.hpp"
#include "bench_common.hpp"
#include "common/ascii_plot.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

int main() {
  using namespace dfv;
  bench::print_header("Figure 1",
                      "Relative performance vs. best run, 128-node datasets over time");
  auto study = bench::make_study();
  bench::PhaseTimer timer("fig01");

  std::vector<Series> series;
  Table t({"app", "runs", "best (s)", "median rel.", "worst rel."});
  for (const char* app : {"MILC", "AMG", "UMT", "miniVite"}) {
    const sim::Dataset& ds = study.dataset(app, 128);
    std::vector<double> rel;
    double best = 1e300;
    for (const auto& run : ds.runs) best = std::min(best, run.total_time_s());
    for (const auto& run : ds.runs) rel.push_back(run.total_time_s() / best);
    t.add_row({app, std::to_string(ds.num_runs()), format_double(best, 1),
               format_double(stats::median(rel), 2), format_double(stats::max(rel), 2)});
    series.push_back({app, rel});
  }
  std::cout << t.str() << "\n";
  std::cout << line_plot(series, {.width = 76,
                                  .height = 16,
                                  .title = "Relative performance (run time / best run time)",
                                  .x_label = "run index over the campaign (Dec..Apr)",
                                  .y_from_zero = false});
  std::cout << "\nPaper: slowdowns up to ~3x (miniVite 3.76x, UMT 3.3x) on the same\n"
               "executable and input; the shape to match is a noisy band above 1.0\n"
               "with occasional 2-4x excursions.\n";
  return 0;
}
