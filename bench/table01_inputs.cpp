// Table I: application versions and their inputs.
#include <iostream>

#include "apps/registry.hpp"
#include "bench_common.hpp"
#include "common/table.hpp"

int main() {
  using namespace dfv;
  bench::print_header("Table I", "Application versions and their inputs");

  Table t({"Application", "Version", "No. of Nodes", "Input Parameters", "Time steps"});
  for (const auto& info : apps::table1_rows())
    t.add_row({info.name, info.version, std::to_string(info.nodes), info.input_params,
               std::to_string(info.time_steps)});
  std::cout << t.str();
  std::cout << "\nEach row is an independent dataset; runs use "
            << apps::table1_rows().front().ranks_per_node
            << " of 68 KNL cores per node (4 reserved for OS daemons).\n";
  return 0;
}
