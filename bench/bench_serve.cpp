// memtier-style load generator for `dfv serve`: start an in-process
// sharded server, hammer it with closed-loop client threads over real
// loopback TCP, and report aggregate QPS plus p50/p99/p999 latency for
// the two serving hot paths (run lookup and point forecast).
//
//   bench_serve [--shards N] [--clients N] [--seconds S] [--json PATH]
//
// Each client owns one connection with strict request/response
// alternation (exactly the protocol contract), so QPS scales with the
// client count and the latency numbers are honest per-request round
// trips. scripts/bench.sh serve merges the JSON into BENCH_serve.json.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/session.hpp"
#include "common/check.hpp"
#include "common/log.hpp"
#include "serve/chaos.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

namespace {

using namespace dfv;

struct Options {
  int shards = 8;
  int clients = 16;
  double seconds = 3.0;
  std::string json_path;
};

struct PhaseResult {
  std::string name;
  std::uint64_t requests = 0;
  double elapsed_s = 0.0;
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
};

double percentile(std::vector<double>& sorted_us, double q) {
  if (sorted_us.empty()) return 0.0;
  const auto n = sorted_us.size();
  std::size_t idx = std::size_t(q * double(n));
  if (idx >= n) idx = n - 1;
  return sorted_us[idx];
}

/// The request each client issues on iteration `i`: a rotation over run
/// indices so all shards see traffic (and no RNG, per the determinism
/// conventions — the load pattern is identical run to run).
api::Request lookup_request(std::uint64_t i) {
  return api::RunLookupRequest{}
      .app(i % 2 ? "UMT" : "MILC")
      .nodes(128)
      .run(std::uint32_t(i % 8));
}

api::Request forecast_request(std::uint64_t i) {
  return api::ForecastRequest{}
      .app(i % 2 ? "UMT" : "MILC")
      .nodes(128)
      .run(std::uint32_t(i % 8))
      .center(10 + int(i % 20))
      .m(10)
      .k(20);
}

template <typename MakeReq>
PhaseResult run_phase(const std::string& name, const Options& opt, std::uint16_t port,
                      MakeReq make_req) {
  DFV_CHECK_MSG(opt.clients >= 1, "bench_serve needs at least one client");
  std::atomic<bool> go{false};
  std::atomic<bool> halt{false};
  std::vector<std::vector<double>> latencies(std::size_t(opt.clients));
  std::vector<std::thread> threads;
  threads.reserve(std::size_t(opt.clients));

  for (int c = 0; c < opt.clients; ++c) {
    threads.emplace_back([&, c] {
      serve::Client client;
      DFV_CHECK_MSG(client.connect(port) == std::nullopt, "bench_serve: handshake failed");
      // Warmup outside the timed window: touch every key in the rotation
      // so shard-resident models are trained before measurement.
      for (std::uint64_t i = 0; i < 16; ++i)
        (void)client.call(make_req(i * std::uint64_t(opt.clients) + std::uint64_t(c)));
      auto& lat = latencies[std::size_t(c)];
      lat.reserve(1u << 16);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      std::uint64_t i = std::uint64_t(c);
      while (!halt.load(std::memory_order_relaxed)) {
        const api::Request req = make_req(i++);
        const auto t0 = std::chrono::steady_clock::now();
        const std::string raw = client.call_raw(req);
        const auto t1 = std::chrono::steady_clock::now();
        DFV_CHECK_MSG(!raw.empty(), "bench_serve: empty response payload");
        lat.push_back(std::chrono::duration<double, std::micro>(t1 - t0).count());
      }
    });
  }

  const auto t0 = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::duration<double>(opt.seconds));
  halt.store(true, std::memory_order_relaxed);
  for (auto& t : threads) t.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  std::vector<double> all;
  for (const auto& lat : latencies) all.insert(all.end(), lat.begin(), lat.end());
  std::sort(all.begin(), all.end());

  PhaseResult r;
  r.name = name;
  r.requests = all.size();
  r.elapsed_s = elapsed;
  r.qps = elapsed > 0.0 ? double(all.size()) / elapsed : 0.0;
  r.p50_us = percentile(all, 0.50);
  r.p99_us = percentile(all, 0.99);
  r.p999_us = percentile(all, 0.999);
  return r;
}

/// Degraded mode: the same closed-loop lookup workload, but through a
/// seeded chaos proxy (5% of event points delay, 1% hard-disconnect)
/// with the retrying client absorbing the faults. The latency numbers
/// therefore include reconnects and backoff sleeps — that is the point:
/// this phase tracks what a caller experiences when the network
/// misbehaves, and BENCH_serve.json keeps it honest release to release.
PhaseResult run_degraded_phase(const Options& opt, std::uint16_t proxy_port) {
  DFV_CHECK_MSG(opt.clients >= 1, "bench_serve needs at least one client");
  std::atomic<bool> go{false};
  std::atomic<bool> halt{false};
  std::vector<std::vector<double>> latencies(std::size_t(opt.clients));
  std::vector<std::thread> threads;
  threads.reserve(std::size_t(opt.clients));

  for (int c = 0; c < opt.clients; ++c) {
    threads.emplace_back([&, c] {
      serve::RetryPolicy policy;
      policy.timeout_ms = 5000;
      policy.jitter_seed = 0x9e3779b9u + std::uint32_t(c);  // distinct backoff streams
      serve::RetryClient client(proxy_port, policy);
      for (std::uint64_t i = 0; i < 16; ++i)
        (void)client.call(lookup_request(i * std::uint64_t(opt.clients) + std::uint64_t(c)));
      auto& lat = latencies[std::size_t(c)];
      lat.reserve(1u << 16);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      std::uint64_t i = std::uint64_t(c);
      while (!halt.load(std::memory_order_relaxed)) {
        const api::Request req = lookup_request(i++);
        const auto t0 = std::chrono::steady_clock::now();
        const std::string raw = client.call_raw(req);
        const auto t1 = std::chrono::steady_clock::now();
        DFV_CHECK_MSG(!raw.empty(), "bench_serve: empty response payload");
        lat.push_back(std::chrono::duration<double, std::micro>(t1 - t0).count());
      }
    });
  }

  const auto t0 = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::duration<double>(opt.seconds));
  halt.store(true, std::memory_order_relaxed);
  for (auto& t : threads) t.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  std::vector<double> all;
  for (const auto& lat : latencies) all.insert(all.end(), lat.begin(), lat.end());
  std::sort(all.begin(), all.end());

  PhaseResult r;
  r.name = "degraded_lookup";
  r.requests = all.size();
  r.elapsed_s = elapsed;
  r.qps = elapsed > 0.0 ? double(all.size()) / elapsed : 0.0;
  r.p50_us = percentile(all, 0.50);
  r.p99_us = percentile(all, 0.99);
  r.p999_us = percentile(all, 0.999);
  return r;
}

void print_phase(const PhaseResult& r) {
  std::cout << r.name << ": " << std::uint64_t(r.qps) << " QPS (" << r.requests
            << " requests / " << r.elapsed_s << " s)  p50 " << r.p50_us << " us  p99 "
            << r.p99_us << " us  p999 " << r.p999_us << " us\n";
}

std::string json_number(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

void write_json(const std::string& path, const Options& opt,
                const std::vector<PhaseResult>& phases) {
  std::ofstream out(path);
  DFV_CHECK_MSG(out.good(), "bench_serve: cannot open " << path);
  out << "{\n  \"shards\": " << opt.shards << ",\n  \"clients\": " << opt.clients;
  for (const auto& r : phases) {
    out << ",\n  \"" << r.name << "_qps\": " << json_number(r.qps)          //
        << ",\n  \"" << r.name << "_p50_us\": " << json_number(r.p50_us)    //
        << ",\n  \"" << r.name << "_p99_us\": " << json_number(r.p99_us)    //
        << ",\n  \"" << r.name << "_p999_us\": " << json_number(r.p999_us)  //
        << ",\n  \"" << r.name << "_requests\": " << r.requests;
  }
  out << "\n}\n";
}

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      DFV_CHECK_MSG(i + 1 < argc, "bench_serve: " << arg << " needs a value");
      return argv[++i];
    };
    if (arg == "--shards") opt.shards = std::stoi(next());
    else if (arg == "--clients") opt.clients = std::stoi(next());
    else if (arg == "--seconds") opt.seconds = std::stod(next());
    else if (arg == "--json") opt.json_path = next();
    else DFV_CHECK_MSG(false, "bench_serve: unknown argument " << arg);
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::Warn);
  const Options opt = parse_args(argc, argv);

  serve::ServerOptions sopt;
  sopt.shards = opt.shards;
  sim::CampaignConfig cfg = sim::CampaignConfig::small(2026);
  cfg.days = 8;
  cfg.datasets = {{"MILC", 128}, {"UMT", 128}};
  sopt.session.config = cfg;

  serve::Server server(std::move(sopt));
  server.start();
  std::cout << "bench_serve: " << opt.shards << " shards, " << opt.clients
            << " closed-loop clients, " << opt.seconds << " s per phase\n";

  std::vector<PhaseResult> phases;
  phases.push_back(run_phase("run_lookup", opt, server.port(), lookup_request));
  print_phase(phases.back());
  phases.push_back(run_phase("forecast", opt, server.port(), forecast_request));
  print_phase(phases.back());

  {
    serve::chaos::ChaosSpec spec;
    spec.seed = 20260808;  // fixed: the fault schedule is part of the benchmark
    spec.delay_prob = 0.05;
    spec.disconnect_prob = 0.01;
    spec.delay_min_ms = 1;
    spec.delay_max_ms = 3;
    serve::chaos::Proxy proxy(spec, server.port());
    proxy.start();
    phases.push_back(run_degraded_phase(opt, proxy.port()));
    print_phase(phases.back());
    proxy.stop();
    const auto ps = proxy.stats();
    std::cout << "chaos: " << ps.connections << " connections, " << ps.delays
              << " delays, " << ps.disconnects << " disconnects\n";
  }

  server.stop();
  const auto stats = server.stats();
  std::cout << "server: " << stats.requests << " requests, " << stats.local
            << " local, " << stats.forwarded << " cross-shard\n";

  if (!opt.json_path.empty()) write_json(opt.json_path, opt, phases);
  return 0;
}
