#include "bench_common.hpp"

#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "common/table.hpp"

#include "common/log.hpp"
#include "exec/exec.hpp"

namespace dfv::bench {

sim::CampaignConfig paper_campaign_config() {
  // Cori-scale defaults: 34 groups, 120 days; campaign start Dec 3, 2018.
  return sim::CampaignConfig::cori().seed(20181203).build();
}

std::string cache_dir() {
  if (const char* env = std::getenv("DFV_CACHE_DIR"); env != nullptr && *env != '\0')
    return env;
#ifdef DFV_DEFAULT_CACHE_DIR
  return DFV_DEFAULT_CACHE_DIR;
#else
  return "dfv_cache";
#endif
}

core::VariabilityStudy make_study() {
  set_log_level(LogLevel::Warn);
  (void)exec::configure_threads(0);  // size the pool from DFV_THREADS (or hardware)
  return core::VariabilityStudy(paper_campaign_config(), cache_dir());
}

PhaseTimer::PhaseTimer(std::string phase)
    : phase_(std::move(phase)), start_(std::chrono::steady_clock::now()) {}

PhaseTimer::~PhaseTimer() {
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  const int threads = exec::ThreadPool::instance().size();
  std::cerr << "[" << phase_ << "] wall-clock " << format_double(secs, 2) << " s on "
            << threads << " thread" << (threads == 1 ? "" : "s") << "\n";
}

void print_header(const std::string& experiment, const std::string& description) {
  std::cout << "==============================================================\n"
            << experiment << " — " << description << "\n"
            << "(reproduction of: Bhatele et al., \"The Case of Performance\n"
            << " Variability on Dragonfly-based Systems\", IPDPS 2020)\n"
            << "==============================================================\n\n";
}

void print_mpi_breakdown(const sim::Dataset& ds) {
  // Identify best / worst runs by total time; "average" aggregates all.
  std::size_t best = 0, worst = 0;
  for (std::size_t r = 1; r < ds.runs.size(); ++r) {
    if (ds.runs[r].total_time_s() < ds.runs[best].total_time_s()) best = r;
    if (ds.runs[r].total_time_s() > ds.runs[worst].total_time_s()) worst = r;
  }
  mon::MpiProfile avg;
  for (const auto& run : ds.runs) avg.add(run.profile);
  const double inv = 1.0 / double(ds.runs.size());

  std::cout << ds.spec.app << ", " << ds.spec.nodes << " nodes (" << ds.num_runs()
            << " runs)\n";
  Table split({"run", "Compute (s)", "MPI (s)", "MPI %"});
  auto add_split = [&split](const std::string& label, const mon::MpiProfile& p,
                            double scale) {
    split.add_row({label, format_double(p.compute_s * scale, 1),
                   format_double(p.mpi_s() * scale, 1),
                   format_double(100.0 * p.mpi_fraction(), 1)});
  };
  add_split("Best", ds.runs[best].profile, 1.0);
  add_split("Average", avg, inv);
  add_split("Worst", ds.runs[worst].profile, 1.0);
  std::cout << split.str();

  std::cout << "Time spent in MPI calls (seconds; best / average / worst run):\n";
  Table rt({"routine", "Best", "Average", "Worst"});
  // Order routines by the average profile, largest first.
  std::vector<int> order(mon::kNumRoutines);
  for (int i = 0; i < mon::kNumRoutines; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return avg.routine_s[std::size_t(a)] > avg.routine_s[std::size_t(b)];
  });
  for (int i : order) {
    const auto r = static_cast<mon::MpiRoutine>(i);
    if (avg.routine(r) * inv < 0.05) continue;  // skip negligible routines
    rt.add_row({mon::routine_name(r), format_double(ds.runs[best].profile.routine(r), 1),
                format_double(avg.routine(r) * inv, 1),
                format_double(ds.runs[worst].profile.routine(r), 1)});
  }
  std::cout << rt.str() << "\n";
}

}  // namespace dfv::bench
