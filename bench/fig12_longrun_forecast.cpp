// Figure 12: forecasting a long production run. The paper ran a 620-step
// MILC job on 128 nodes (>1h45m), divided it into 40-step segments, and
// predicted each segment's time from the previous 30 steps with a model
// trained only on the short campaign runs — no data from the long run
// was used in training.
#include <iostream>

#include "analysis/forecast.hpp"
#include "bench_common.hpp"
#include "common/ascii_plot.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "ml/metrics.hpp"

int main() {
  using namespace dfv;
  bench::print_header("Figure 12",
                      "Forecasting 40-step segments of a 620-step MILC run (m=30)");
  auto study = bench::make_study();

  const analysis::WindowConfig wcfg{30, 40, analysis::FeatureSet::AppPlacementIoSys};
  const auto lr = study.long_run_forecast(/*nodes=*/128, /*steps=*/620, wcfg);

  std::cout << line_plot({Series{"Observed", lr.observed}, Series{"Predicted", lr.predicted}},
                         {.width = 72,
                          .height = 14,
                          .title = "Time per 40-step segment (s)",
                          .x_label = "segment (40 steps each)",
                          .y_from_zero = true})
            << "\n";

  Table t({"segment start step", "observed (s)", "predicted (s)", "error (%)"});
  for (std::size_t i = 0; i < lr.observed.size(); ++i)
    t.add_row({std::to_string(lr.segment_start[i]), format_double(lr.observed[i], 1),
               format_double(lr.predicted[i], 1),
               format_double(100.0 * (lr.predicted[i] - lr.observed[i]) / lr.observed[i], 1)});
  std::cout << t.str();

  const double mean_obs = stats::mean(lr.observed);
  const std::vector<double> constant(lr.observed.size(), mean_obs);
  std::cout << "\nsegment MAPE: " << format_double(lr.mape, 2)
            << "%  (oracle-mean baseline: " << format_double(ml::mape(lr.observed, constant), 2)
            << "%)\n";
  std::cout << "Shape to match: predictions track the observed segment times through\n"
               "multi-hundred-second swings, with occasional irreducible misses.\n";
  return 0;
}
