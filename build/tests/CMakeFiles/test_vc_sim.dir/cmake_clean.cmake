file(REMOVE_RECURSE
  "CMakeFiles/test_vc_sim.dir/test_vc_sim.cpp.o"
  "CMakeFiles/test_vc_sim.dir/test_vc_sim.cpp.o.d"
  "test_vc_sim"
  "test_vc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
