# Empty dependencies file for test_vc_sim.
# This may be replaced when dependencies are built.
