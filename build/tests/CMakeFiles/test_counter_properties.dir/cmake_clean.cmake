file(REMOVE_RECURSE
  "CMakeFiles/test_counter_properties.dir/test_counter_properties.cpp.o"
  "CMakeFiles/test_counter_properties.dir/test_counter_properties.cpp.o.d"
  "test_counter_properties"
  "test_counter_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_counter_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
