# Empty compiler generated dependencies file for test_counter_properties.
# This may be replaced when dependencies are built.
