file(REMOVE_RECURSE
  "CMakeFiles/test_attention.dir/test_attention.cpp.o"
  "CMakeFiles/test_attention.dir/test_attention.cpp.o.d"
  "test_attention"
  "test_attention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_attention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
