# Empty dependencies file for test_attention.
# This may be replaced when dependencies are built.
