# Empty compiler generated dependencies file for test_gbr.
# This may be replaced when dependencies are built.
