file(REMOVE_RECURSE
  "CMakeFiles/test_gbr.dir/test_gbr.cpp.o"
  "CMakeFiles/test_gbr.dir/test_gbr.cpp.o.d"
  "test_gbr"
  "test_gbr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gbr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
