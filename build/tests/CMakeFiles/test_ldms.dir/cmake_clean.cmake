file(REMOVE_RECURSE
  "CMakeFiles/test_ldms.dir/test_ldms.cpp.o"
  "CMakeFiles/test_ldms.dir/test_ldms.cpp.o.d"
  "test_ldms"
  "test_ldms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ldms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
