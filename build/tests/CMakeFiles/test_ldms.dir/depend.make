# Empty dependencies file for test_ldms.
# This may be replaced when dependencies are built.
