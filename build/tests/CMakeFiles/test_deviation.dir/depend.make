# Empty dependencies file for test_deviation.
# This may be replaced when dependencies are built.
