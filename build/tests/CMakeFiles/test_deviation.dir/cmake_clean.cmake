file(REMOVE_RECURSE
  "CMakeFiles/test_deviation.dir/test_deviation.cpp.o"
  "CMakeFiles/test_deviation.dir/test_deviation.cpp.o.d"
  "test_deviation"
  "test_deviation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_deviation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
