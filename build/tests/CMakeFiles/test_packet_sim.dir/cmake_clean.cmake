file(REMOVE_RECURSE
  "CMakeFiles/test_packet_sim.dir/test_packet_sim.cpp.o"
  "CMakeFiles/test_packet_sim.dir/test_packet_sim.cpp.o.d"
  "test_packet_sim"
  "test_packet_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_packet_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
