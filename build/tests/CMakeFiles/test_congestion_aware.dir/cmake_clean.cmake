file(REMOVE_RECURSE
  "CMakeFiles/test_congestion_aware.dir/test_congestion_aware.cpp.o"
  "CMakeFiles/test_congestion_aware.dir/test_congestion_aware.cpp.o.d"
  "test_congestion_aware"
  "test_congestion_aware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_congestion_aware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
