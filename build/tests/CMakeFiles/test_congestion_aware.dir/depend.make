# Empty dependencies file for test_congestion_aware.
# This may be replaced when dependencies are built.
