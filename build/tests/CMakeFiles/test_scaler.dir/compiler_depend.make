# Empty compiler generated dependencies file for test_scaler.
# This may be replaced when dependencies are built.
