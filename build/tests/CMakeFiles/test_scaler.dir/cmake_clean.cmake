file(REMOVE_RECURSE
  "CMakeFiles/test_scaler.dir/test_scaler.cpp.o"
  "CMakeFiles/test_scaler.dir/test_scaler.cpp.o.d"
  "test_scaler"
  "test_scaler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scaler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
