# Empty compiler generated dependencies file for test_rfe.
# This may be replaced when dependencies are built.
