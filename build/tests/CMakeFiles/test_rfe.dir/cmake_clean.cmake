file(REMOVE_RECURSE
  "CMakeFiles/test_rfe.dir/test_rfe.cpp.o"
  "CMakeFiles/test_rfe.dir/test_rfe.cpp.o.d"
  "test_rfe"
  "test_rfe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rfe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
