file(REMOVE_RECURSE
  "CMakeFiles/test_flow_properties.dir/test_flow_properties.cpp.o"
  "CMakeFiles/test_flow_properties.dir/test_flow_properties.cpp.o.d"
  "test_flow_properties"
  "test_flow_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flow_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
