file(REMOVE_RECURSE
  "CMakeFiles/test_mpip.dir/test_mpip.cpp.o"
  "CMakeFiles/test_mpip.dir/test_mpip.cpp.o.d"
  "test_mpip"
  "test_mpip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
