# Empty dependencies file for test_mpip.
# This may be replaced when dependencies are built.
