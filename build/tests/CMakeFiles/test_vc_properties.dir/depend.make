# Empty dependencies file for test_vc_properties.
# This may be replaced when dependencies are built.
