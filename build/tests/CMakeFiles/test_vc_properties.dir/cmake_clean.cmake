file(REMOVE_RECURSE
  "CMakeFiles/test_vc_properties.dir/test_vc_properties.cpp.o"
  "CMakeFiles/test_vc_properties.dir/test_vc_properties.cpp.o.d"
  "test_vc_properties"
  "test_vc_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vc_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
