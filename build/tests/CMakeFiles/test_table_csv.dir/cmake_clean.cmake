file(REMOVE_RECURSE
  "CMakeFiles/test_table_csv.dir/test_table_csv.cpp.o"
  "CMakeFiles/test_table_csv.dir/test_table_csv.cpp.o.d"
  "test_table_csv"
  "test_table_csv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_table_csv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
