file(REMOVE_RECURSE
  "CMakeFiles/test_comm_patterns.dir/test_comm_patterns.cpp.o"
  "CMakeFiles/test_comm_patterns.dir/test_comm_patterns.cpp.o.d"
  "test_comm_patterns"
  "test_comm_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_comm_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
