# Empty compiler generated dependencies file for test_comm_patterns.
# This may be replaced when dependencies are built.
