# Empty compiler generated dependencies file for test_kfold.
# This may be replaced when dependencies are built.
