file(REMOVE_RECURSE
  "CMakeFiles/test_kfold.dir/test_kfold.cpp.o"
  "CMakeFiles/test_kfold.dir/test_kfold.cpp.o.d"
  "test_kfold"
  "test_kfold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kfold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
