file(REMOVE_RECURSE
  "CMakeFiles/test_neighborhood.dir/test_neighborhood.cpp.o"
  "CMakeFiles/test_neighborhood.dir/test_neighborhood.cpp.o.d"
  "test_neighborhood"
  "test_neighborhood.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_neighborhood.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
