# Empty compiler generated dependencies file for test_neighborhood.
# This may be replaced when dependencies are built.
