file(REMOVE_RECURSE
  "CMakeFiles/test_slurm.dir/test_slurm.cpp.o"
  "CMakeFiles/test_slurm.dir/test_slurm.cpp.o.d"
  "test_slurm"
  "test_slurm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_slurm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
