# Empty dependencies file for test_slurm.
# This may be replaced when dependencies are built.
