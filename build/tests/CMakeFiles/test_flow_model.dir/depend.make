# Empty dependencies file for test_flow_model.
# This may be replaced when dependencies are built.
