file(REMOVE_RECURSE
  "CMakeFiles/test_flow_model.dir/test_flow_model.cpp.o"
  "CMakeFiles/test_flow_model.dir/test_flow_model.cpp.o.d"
  "test_flow_model"
  "test_flow_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flow_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
