
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig04_mpi_breakdown_amg_milc.cpp" "bench/CMakeFiles/fig04_mpi_breakdown_amg_milc.dir/fig04_mpi_breakdown_amg_milc.cpp.o" "gcc" "bench/CMakeFiles/fig04_mpi_breakdown_amg_milc.dir/fig04_mpi_breakdown_amg_milc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/dfv_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dfv_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/dfv_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dfv_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/dfv_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/mon/CMakeFiles/dfv_mon.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/dfv_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dfv_net.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/dfv_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dfv_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
