# Empty compiler generated dependencies file for fig04_mpi_breakdown_amg_milc.
# This may be replaced when dependencies are built.
