file(REMOVE_RECURSE
  "CMakeFiles/fig04_mpi_breakdown_amg_milc.dir/fig04_mpi_breakdown_amg_milc.cpp.o"
  "CMakeFiles/fig04_mpi_breakdown_amg_milc.dir/fig04_mpi_breakdown_amg_milc.cpp.o.d"
  "fig04_mpi_breakdown_amg_milc"
  "fig04_mpi_breakdown_amg_milc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_mpi_breakdown_amg_milc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
