# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig04_mpi_breakdown_amg_milc.
