file(REMOVE_RECURSE
  "CMakeFiles/fig02_topology.dir/fig02_topology.cpp.o"
  "CMakeFiles/fig02_topology.dir/fig02_topology.cpp.o.d"
  "fig02_topology"
  "fig02_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
