# Empty dependencies file for fig02_topology.
# This may be replaced when dependencies are built.
