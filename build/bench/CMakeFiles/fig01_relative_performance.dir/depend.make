# Empty dependencies file for fig01_relative_performance.
# This may be replaced when dependencies are built.
