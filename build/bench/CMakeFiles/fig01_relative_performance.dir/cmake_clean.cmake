file(REMOVE_RECURSE
  "CMakeFiles/fig01_relative_performance.dir/fig01_relative_performance.cpp.o"
  "CMakeFiles/fig01_relative_performance.dir/fig01_relative_performance.cpp.o.d"
  "fig01_relative_performance"
  "fig01_relative_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_relative_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
