file(REMOVE_RECURSE
  "CMakeFiles/fig10_forecast_milc.dir/fig10_forecast_milc.cpp.o"
  "CMakeFiles/fig10_forecast_milc.dir/fig10_forecast_milc.cpp.o.d"
  "fig10_forecast_milc"
  "fig10_forecast_milc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_forecast_milc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
