# Empty dependencies file for fig10_forecast_milc.
# This may be replaced when dependencies are built.
