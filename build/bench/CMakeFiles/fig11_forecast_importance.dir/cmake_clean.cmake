file(REMOVE_RECURSE
  "CMakeFiles/fig11_forecast_importance.dir/fig11_forecast_importance.cpp.o"
  "CMakeFiles/fig11_forecast_importance.dir/fig11_forecast_importance.cpp.o.d"
  "fig11_forecast_importance"
  "fig11_forecast_importance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_forecast_importance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
