# Empty dependencies file for fig11_forecast_importance.
# This may be replaced when dependencies are built.
