# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig05_mpi_breakdown_minivite_umt.
