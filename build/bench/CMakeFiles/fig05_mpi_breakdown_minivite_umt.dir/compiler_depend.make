# Empty compiler generated dependencies file for fig05_mpi_breakdown_minivite_umt.
# This may be replaced when dependencies are built.
