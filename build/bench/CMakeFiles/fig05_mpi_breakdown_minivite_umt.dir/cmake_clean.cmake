file(REMOVE_RECURSE
  "CMakeFiles/fig05_mpi_breakdown_minivite_umt.dir/fig05_mpi_breakdown_minivite_umt.cpp.o"
  "CMakeFiles/fig05_mpi_breakdown_minivite_umt.dir/fig05_mpi_breakdown_minivite_umt.cpp.o.d"
  "fig05_mpi_breakdown_minivite_umt"
  "fig05_mpi_breakdown_minivite_umt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_mpi_breakdown_minivite_umt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
