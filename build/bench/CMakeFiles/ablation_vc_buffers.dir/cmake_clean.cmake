file(REMOVE_RECURSE
  "CMakeFiles/ablation_vc_buffers.dir/ablation_vc_buffers.cpp.o"
  "CMakeFiles/ablation_vc_buffers.dir/ablation_vc_buffers.cpp.o.d"
  "ablation_vc_buffers"
  "ablation_vc_buffers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_vc_buffers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
