# Empty dependencies file for ablation_vc_buffers.
# This may be replaced when dependencies are built.
