# Empty compiler generated dependencies file for fig12_longrun_forecast.
# This may be replaced when dependencies are built.
