file(REMOVE_RECURSE
  "CMakeFiles/fig12_longrun_forecast.dir/fig12_longrun_forecast.cpp.o"
  "CMakeFiles/fig12_longrun_forecast.dir/fig12_longrun_forecast.cpp.o.d"
  "fig12_longrun_forecast"
  "fig12_longrun_forecast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_longrun_forecast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
