# Empty compiler generated dependencies file for ablation_flow_vs_des.
# This may be replaced when dependencies are built.
