file(REMOVE_RECURSE
  "CMakeFiles/ablation_flow_vs_des.dir/ablation_flow_vs_des.cpp.o"
  "CMakeFiles/ablation_flow_vs_des.dir/ablation_flow_vs_des.cpp.o.d"
  "ablation_flow_vs_des"
  "ablation_flow_vs_des.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_flow_vs_des.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
