file(REMOVE_RECURSE
  "CMakeFiles/table02_counters.dir/table02_counters.cpp.o"
  "CMakeFiles/table02_counters.dir/table02_counters.cpp.o.d"
  "table02_counters"
  "table02_counters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table02_counters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
