# Empty compiler generated dependencies file for table02_counters.
# This may be replaced when dependencies are built.
