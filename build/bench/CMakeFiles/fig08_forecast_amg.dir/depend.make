# Empty dependencies file for fig08_forecast_amg.
# This may be replaced when dependencies are built.
