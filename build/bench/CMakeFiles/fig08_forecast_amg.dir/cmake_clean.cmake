file(REMOVE_RECURSE
  "CMakeFiles/fig08_forecast_amg.dir/fig08_forecast_amg.cpp.o"
  "CMakeFiles/fig08_forecast_amg.dir/fig08_forecast_amg.cpp.o.d"
  "fig08_forecast_amg"
  "fig08_forecast_amg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_forecast_amg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
