file(REMOVE_RECURSE
  "CMakeFiles/table01_inputs.dir/table01_inputs.cpp.o"
  "CMakeFiles/table01_inputs.dir/table01_inputs.cpp.o.d"
  "table01_inputs"
  "table01_inputs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table01_inputs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
