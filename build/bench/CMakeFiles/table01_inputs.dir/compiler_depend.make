# Empty compiler generated dependencies file for table01_inputs.
# This may be replaced when dependencies are built.
