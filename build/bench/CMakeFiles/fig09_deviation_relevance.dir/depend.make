# Empty dependencies file for fig09_deviation_relevance.
# This may be replaced when dependencies are built.
