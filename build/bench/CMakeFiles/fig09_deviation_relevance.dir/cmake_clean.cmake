file(REMOVE_RECURSE
  "CMakeFiles/fig09_deviation_relevance.dir/fig09_deviation_relevance.cpp.o"
  "CMakeFiles/fig09_deviation_relevance.dir/fig09_deviation_relevance.cpp.o.d"
  "fig09_deviation_relevance"
  "fig09_deviation_relevance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_deviation_relevance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
