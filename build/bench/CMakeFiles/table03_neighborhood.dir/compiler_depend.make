# Empty compiler generated dependencies file for table03_neighborhood.
# This may be replaced when dependencies are built.
