file(REMOVE_RECURSE
  "CMakeFiles/table03_neighborhood.dir/table03_neighborhood.cpp.o"
  "CMakeFiles/table03_neighborhood.dir/table03_neighborhood.cpp.o.d"
  "table03_neighborhood"
  "table03_neighborhood.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table03_neighborhood.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
