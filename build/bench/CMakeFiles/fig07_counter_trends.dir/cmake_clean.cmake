file(REMOVE_RECURSE
  "CMakeFiles/fig07_counter_trends.dir/fig07_counter_trends.cpp.o"
  "CMakeFiles/fig07_counter_trends.dir/fig07_counter_trends.cpp.o.d"
  "fig07_counter_trends"
  "fig07_counter_trends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_counter_trends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
