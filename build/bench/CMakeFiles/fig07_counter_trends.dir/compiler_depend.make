# Empty compiler generated dependencies file for fig07_counter_trends.
# This may be replaced when dependencies are built.
