# Empty compiler generated dependencies file for fig03_step_behavior.
# This may be replaced when dependencies are built.
