file(REMOVE_RECURSE
  "CMakeFiles/fig03_step_behavior.dir/fig03_step_behavior.cpp.o"
  "CMakeFiles/fig03_step_behavior.dir/fig03_step_behavior.cpp.o.d"
  "fig03_step_behavior"
  "fig03_step_behavior.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_step_behavior.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
