file(REMOVE_RECURSE
  "libdfv_bench_common.a"
)
