file(REMOVE_RECURSE
  "CMakeFiles/dfv_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/dfv_bench_common.dir/bench_common.cpp.o.d"
  "libdfv_bench_common.a"
  "libdfv_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfv_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
