# Empty dependencies file for dfv_bench_common.
# This may be replaced when dependencies are built.
