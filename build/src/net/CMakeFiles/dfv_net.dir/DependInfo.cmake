
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/flow_model.cpp" "src/net/CMakeFiles/dfv_net.dir/flow_model.cpp.o" "gcc" "src/net/CMakeFiles/dfv_net.dir/flow_model.cpp.o.d"
  "/root/repo/src/net/packet_sim.cpp" "src/net/CMakeFiles/dfv_net.dir/packet_sim.cpp.o" "gcc" "src/net/CMakeFiles/dfv_net.dir/packet_sim.cpp.o.d"
  "/root/repo/src/net/routing.cpp" "src/net/CMakeFiles/dfv_net.dir/routing.cpp.o" "gcc" "src/net/CMakeFiles/dfv_net.dir/routing.cpp.o.d"
  "/root/repo/src/net/topology.cpp" "src/net/CMakeFiles/dfv_net.dir/topology.cpp.o" "gcc" "src/net/CMakeFiles/dfv_net.dir/topology.cpp.o.d"
  "/root/repo/src/net/vc_sim.cpp" "src/net/CMakeFiles/dfv_net.dir/vc_sim.cpp.o" "gcc" "src/net/CMakeFiles/dfv_net.dir/vc_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dfv_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
