file(REMOVE_RECURSE
  "CMakeFiles/dfv_net.dir/flow_model.cpp.o"
  "CMakeFiles/dfv_net.dir/flow_model.cpp.o.d"
  "CMakeFiles/dfv_net.dir/packet_sim.cpp.o"
  "CMakeFiles/dfv_net.dir/packet_sim.cpp.o.d"
  "CMakeFiles/dfv_net.dir/routing.cpp.o"
  "CMakeFiles/dfv_net.dir/routing.cpp.o.d"
  "CMakeFiles/dfv_net.dir/topology.cpp.o"
  "CMakeFiles/dfv_net.dir/topology.cpp.o.d"
  "CMakeFiles/dfv_net.dir/vc_sim.cpp.o"
  "CMakeFiles/dfv_net.dir/vc_sim.cpp.o.d"
  "libdfv_net.a"
  "libdfv_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfv_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
