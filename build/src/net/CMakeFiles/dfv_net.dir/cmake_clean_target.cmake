file(REMOVE_RECURSE
  "libdfv_net.a"
)
