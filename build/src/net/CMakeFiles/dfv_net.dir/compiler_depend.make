# Empty compiler generated dependencies file for dfv_net.
# This may be replaced when dependencies are built.
