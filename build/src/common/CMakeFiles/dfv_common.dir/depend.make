# Empty dependencies file for dfv_common.
# This may be replaced when dependencies are built.
