file(REMOVE_RECURSE
  "CMakeFiles/dfv_common.dir/ascii_plot.cpp.o"
  "CMakeFiles/dfv_common.dir/ascii_plot.cpp.o.d"
  "CMakeFiles/dfv_common.dir/csv.cpp.o"
  "CMakeFiles/dfv_common.dir/csv.cpp.o.d"
  "CMakeFiles/dfv_common.dir/log.cpp.o"
  "CMakeFiles/dfv_common.dir/log.cpp.o.d"
  "CMakeFiles/dfv_common.dir/rng.cpp.o"
  "CMakeFiles/dfv_common.dir/rng.cpp.o.d"
  "CMakeFiles/dfv_common.dir/stats.cpp.o"
  "CMakeFiles/dfv_common.dir/stats.cpp.o.d"
  "CMakeFiles/dfv_common.dir/table.cpp.o"
  "CMakeFiles/dfv_common.dir/table.cpp.o.d"
  "CMakeFiles/dfv_common.dir/timeseries.cpp.o"
  "CMakeFiles/dfv_common.dir/timeseries.cpp.o.d"
  "libdfv_common.a"
  "libdfv_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfv_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
