file(REMOVE_RECURSE
  "libdfv_common.a"
)
