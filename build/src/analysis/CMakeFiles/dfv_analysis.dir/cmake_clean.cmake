file(REMOVE_RECURSE
  "CMakeFiles/dfv_analysis.dir/deviation.cpp.o"
  "CMakeFiles/dfv_analysis.dir/deviation.cpp.o.d"
  "CMakeFiles/dfv_analysis.dir/forecast.cpp.o"
  "CMakeFiles/dfv_analysis.dir/forecast.cpp.o.d"
  "CMakeFiles/dfv_analysis.dir/neighborhood.cpp.o"
  "CMakeFiles/dfv_analysis.dir/neighborhood.cpp.o.d"
  "libdfv_analysis.a"
  "libdfv_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfv_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
