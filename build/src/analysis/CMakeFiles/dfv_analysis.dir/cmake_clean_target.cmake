file(REMOVE_RECURSE
  "libdfv_analysis.a"
)
