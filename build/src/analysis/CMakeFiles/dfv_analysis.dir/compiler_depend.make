# Empty compiler generated dependencies file for dfv_analysis.
# This may be replaced when dependencies are built.
