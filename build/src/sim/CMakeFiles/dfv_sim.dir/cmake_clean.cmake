file(REMOVE_RECURSE
  "CMakeFiles/dfv_sim.dir/campaign.cpp.o"
  "CMakeFiles/dfv_sim.dir/campaign.cpp.o.d"
  "CMakeFiles/dfv_sim.dir/cluster.cpp.o"
  "CMakeFiles/dfv_sim.dir/cluster.cpp.o.d"
  "CMakeFiles/dfv_sim.dir/congestion_aware.cpp.o"
  "CMakeFiles/dfv_sim.dir/congestion_aware.cpp.o.d"
  "CMakeFiles/dfv_sim.dir/dataset.cpp.o"
  "CMakeFiles/dfv_sim.dir/dataset.cpp.o.d"
  "libdfv_sim.a"
  "libdfv_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfv_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
