# Empty compiler generated dependencies file for dfv_sim.
# This may be replaced when dependencies are built.
