file(REMOVE_RECURSE
  "libdfv_sim.a"
)
