
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/campaign.cpp" "src/sim/CMakeFiles/dfv_sim.dir/campaign.cpp.o" "gcc" "src/sim/CMakeFiles/dfv_sim.dir/campaign.cpp.o.d"
  "/root/repo/src/sim/cluster.cpp" "src/sim/CMakeFiles/dfv_sim.dir/cluster.cpp.o" "gcc" "src/sim/CMakeFiles/dfv_sim.dir/cluster.cpp.o.d"
  "/root/repo/src/sim/congestion_aware.cpp" "src/sim/CMakeFiles/dfv_sim.dir/congestion_aware.cpp.o" "gcc" "src/sim/CMakeFiles/dfv_sim.dir/congestion_aware.cpp.o.d"
  "/root/repo/src/sim/dataset.cpp" "src/sim/CMakeFiles/dfv_sim.dir/dataset.cpp.o" "gcc" "src/sim/CMakeFiles/dfv_sim.dir/dataset.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dfv_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dfv_net.dir/DependInfo.cmake"
  "/root/repo/build/src/mon/CMakeFiles/dfv_mon.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/dfv_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/dfv_sched.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
