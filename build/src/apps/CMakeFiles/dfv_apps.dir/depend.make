# Empty dependencies file for dfv_apps.
# This may be replaced when dependencies are built.
