file(REMOVE_RECURSE
  "libdfv_apps.a"
)
