
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/amg.cpp" "src/apps/CMakeFiles/dfv_apps.dir/amg.cpp.o" "gcc" "src/apps/CMakeFiles/dfv_apps.dir/amg.cpp.o.d"
  "/root/repo/src/apps/comm_patterns.cpp" "src/apps/CMakeFiles/dfv_apps.dir/comm_patterns.cpp.o" "gcc" "src/apps/CMakeFiles/dfv_apps.dir/comm_patterns.cpp.o.d"
  "/root/repo/src/apps/milc.cpp" "src/apps/CMakeFiles/dfv_apps.dir/milc.cpp.o" "gcc" "src/apps/CMakeFiles/dfv_apps.dir/milc.cpp.o.d"
  "/root/repo/src/apps/minivite.cpp" "src/apps/CMakeFiles/dfv_apps.dir/minivite.cpp.o" "gcc" "src/apps/CMakeFiles/dfv_apps.dir/minivite.cpp.o.d"
  "/root/repo/src/apps/registry.cpp" "src/apps/CMakeFiles/dfv_apps.dir/registry.cpp.o" "gcc" "src/apps/CMakeFiles/dfv_apps.dir/registry.cpp.o.d"
  "/root/repo/src/apps/umt.cpp" "src/apps/CMakeFiles/dfv_apps.dir/umt.cpp.o" "gcc" "src/apps/CMakeFiles/dfv_apps.dir/umt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dfv_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dfv_net.dir/DependInfo.cmake"
  "/root/repo/build/src/mon/CMakeFiles/dfv_mon.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/dfv_sched.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
