file(REMOVE_RECURSE
  "CMakeFiles/dfv_apps.dir/amg.cpp.o"
  "CMakeFiles/dfv_apps.dir/amg.cpp.o.d"
  "CMakeFiles/dfv_apps.dir/comm_patterns.cpp.o"
  "CMakeFiles/dfv_apps.dir/comm_patterns.cpp.o.d"
  "CMakeFiles/dfv_apps.dir/milc.cpp.o"
  "CMakeFiles/dfv_apps.dir/milc.cpp.o.d"
  "CMakeFiles/dfv_apps.dir/minivite.cpp.o"
  "CMakeFiles/dfv_apps.dir/minivite.cpp.o.d"
  "CMakeFiles/dfv_apps.dir/registry.cpp.o"
  "CMakeFiles/dfv_apps.dir/registry.cpp.o.d"
  "CMakeFiles/dfv_apps.dir/umt.cpp.o"
  "CMakeFiles/dfv_apps.dir/umt.cpp.o.d"
  "libdfv_apps.a"
  "libdfv_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfv_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
