file(REMOVE_RECURSE
  "CMakeFiles/dfv_sched.dir/allocator.cpp.o"
  "CMakeFiles/dfv_sched.dir/allocator.cpp.o.d"
  "CMakeFiles/dfv_sched.dir/placement.cpp.o"
  "CMakeFiles/dfv_sched.dir/placement.cpp.o.d"
  "CMakeFiles/dfv_sched.dir/slurm.cpp.o"
  "CMakeFiles/dfv_sched.dir/slurm.cpp.o.d"
  "CMakeFiles/dfv_sched.dir/workload.cpp.o"
  "CMakeFiles/dfv_sched.dir/workload.cpp.o.d"
  "libdfv_sched.a"
  "libdfv_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfv_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
