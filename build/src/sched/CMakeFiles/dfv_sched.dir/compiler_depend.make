# Empty compiler generated dependencies file for dfv_sched.
# This may be replaced when dependencies are built.
