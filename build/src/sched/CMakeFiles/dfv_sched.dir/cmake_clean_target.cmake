file(REMOVE_RECURSE
  "libdfv_sched.a"
)
