
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/allocator.cpp" "src/sched/CMakeFiles/dfv_sched.dir/allocator.cpp.o" "gcc" "src/sched/CMakeFiles/dfv_sched.dir/allocator.cpp.o.d"
  "/root/repo/src/sched/placement.cpp" "src/sched/CMakeFiles/dfv_sched.dir/placement.cpp.o" "gcc" "src/sched/CMakeFiles/dfv_sched.dir/placement.cpp.o.d"
  "/root/repo/src/sched/slurm.cpp" "src/sched/CMakeFiles/dfv_sched.dir/slurm.cpp.o" "gcc" "src/sched/CMakeFiles/dfv_sched.dir/slurm.cpp.o.d"
  "/root/repo/src/sched/workload.cpp" "src/sched/CMakeFiles/dfv_sched.dir/workload.cpp.o" "gcc" "src/sched/CMakeFiles/dfv_sched.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dfv_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dfv_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
