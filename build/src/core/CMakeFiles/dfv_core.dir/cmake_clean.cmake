file(REMOVE_RECURSE
  "CMakeFiles/dfv_core.dir/study.cpp.o"
  "CMakeFiles/dfv_core.dir/study.cpp.o.d"
  "libdfv_core.a"
  "libdfv_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfv_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
