file(REMOVE_RECURSE
  "libdfv_core.a"
)
