# Empty dependencies file for dfv_core.
# This may be replaced when dependencies are built.
