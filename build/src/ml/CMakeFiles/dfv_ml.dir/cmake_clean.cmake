file(REMOVE_RECURSE
  "CMakeFiles/dfv_ml.dir/attention.cpp.o"
  "CMakeFiles/dfv_ml.dir/attention.cpp.o.d"
  "CMakeFiles/dfv_ml.dir/gbr.cpp.o"
  "CMakeFiles/dfv_ml.dir/gbr.cpp.o.d"
  "CMakeFiles/dfv_ml.dir/kfold.cpp.o"
  "CMakeFiles/dfv_ml.dir/kfold.cpp.o.d"
  "CMakeFiles/dfv_ml.dir/linear.cpp.o"
  "CMakeFiles/dfv_ml.dir/linear.cpp.o.d"
  "CMakeFiles/dfv_ml.dir/matrix.cpp.o"
  "CMakeFiles/dfv_ml.dir/matrix.cpp.o.d"
  "CMakeFiles/dfv_ml.dir/metrics.cpp.o"
  "CMakeFiles/dfv_ml.dir/metrics.cpp.o.d"
  "CMakeFiles/dfv_ml.dir/mutual_info.cpp.o"
  "CMakeFiles/dfv_ml.dir/mutual_info.cpp.o.d"
  "CMakeFiles/dfv_ml.dir/rfe.cpp.o"
  "CMakeFiles/dfv_ml.dir/rfe.cpp.o.d"
  "CMakeFiles/dfv_ml.dir/scaler.cpp.o"
  "CMakeFiles/dfv_ml.dir/scaler.cpp.o.d"
  "CMakeFiles/dfv_ml.dir/tree.cpp.o"
  "CMakeFiles/dfv_ml.dir/tree.cpp.o.d"
  "libdfv_ml.a"
  "libdfv_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfv_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
