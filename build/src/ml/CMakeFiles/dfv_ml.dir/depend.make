# Empty dependencies file for dfv_ml.
# This may be replaced when dependencies are built.
