
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/attention.cpp" "src/ml/CMakeFiles/dfv_ml.dir/attention.cpp.o" "gcc" "src/ml/CMakeFiles/dfv_ml.dir/attention.cpp.o.d"
  "/root/repo/src/ml/gbr.cpp" "src/ml/CMakeFiles/dfv_ml.dir/gbr.cpp.o" "gcc" "src/ml/CMakeFiles/dfv_ml.dir/gbr.cpp.o.d"
  "/root/repo/src/ml/kfold.cpp" "src/ml/CMakeFiles/dfv_ml.dir/kfold.cpp.o" "gcc" "src/ml/CMakeFiles/dfv_ml.dir/kfold.cpp.o.d"
  "/root/repo/src/ml/linear.cpp" "src/ml/CMakeFiles/dfv_ml.dir/linear.cpp.o" "gcc" "src/ml/CMakeFiles/dfv_ml.dir/linear.cpp.o.d"
  "/root/repo/src/ml/matrix.cpp" "src/ml/CMakeFiles/dfv_ml.dir/matrix.cpp.o" "gcc" "src/ml/CMakeFiles/dfv_ml.dir/matrix.cpp.o.d"
  "/root/repo/src/ml/metrics.cpp" "src/ml/CMakeFiles/dfv_ml.dir/metrics.cpp.o" "gcc" "src/ml/CMakeFiles/dfv_ml.dir/metrics.cpp.o.d"
  "/root/repo/src/ml/mutual_info.cpp" "src/ml/CMakeFiles/dfv_ml.dir/mutual_info.cpp.o" "gcc" "src/ml/CMakeFiles/dfv_ml.dir/mutual_info.cpp.o.d"
  "/root/repo/src/ml/rfe.cpp" "src/ml/CMakeFiles/dfv_ml.dir/rfe.cpp.o" "gcc" "src/ml/CMakeFiles/dfv_ml.dir/rfe.cpp.o.d"
  "/root/repo/src/ml/scaler.cpp" "src/ml/CMakeFiles/dfv_ml.dir/scaler.cpp.o" "gcc" "src/ml/CMakeFiles/dfv_ml.dir/scaler.cpp.o.d"
  "/root/repo/src/ml/tree.cpp" "src/ml/CMakeFiles/dfv_ml.dir/tree.cpp.o" "gcc" "src/ml/CMakeFiles/dfv_ml.dir/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dfv_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
