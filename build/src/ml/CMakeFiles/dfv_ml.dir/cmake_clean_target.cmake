file(REMOVE_RECURSE
  "libdfv_ml.a"
)
