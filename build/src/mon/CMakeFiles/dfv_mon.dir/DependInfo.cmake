
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mon/counter_model.cpp" "src/mon/CMakeFiles/dfv_mon.dir/counter_model.cpp.o" "gcc" "src/mon/CMakeFiles/dfv_mon.dir/counter_model.cpp.o.d"
  "/root/repo/src/mon/counters.cpp" "src/mon/CMakeFiles/dfv_mon.dir/counters.cpp.o" "gcc" "src/mon/CMakeFiles/dfv_mon.dir/counters.cpp.o.d"
  "/root/repo/src/mon/ldms.cpp" "src/mon/CMakeFiles/dfv_mon.dir/ldms.cpp.o" "gcc" "src/mon/CMakeFiles/dfv_mon.dir/ldms.cpp.o.d"
  "/root/repo/src/mon/mpip.cpp" "src/mon/CMakeFiles/dfv_mon.dir/mpip.cpp.o" "gcc" "src/mon/CMakeFiles/dfv_mon.dir/mpip.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dfv_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dfv_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
