# Empty dependencies file for dfv_mon.
# This may be replaced when dependencies are built.
