file(REMOVE_RECURSE
  "libdfv_mon.a"
)
