file(REMOVE_RECURSE
  "CMakeFiles/dfv_mon.dir/counter_model.cpp.o"
  "CMakeFiles/dfv_mon.dir/counter_model.cpp.o.d"
  "CMakeFiles/dfv_mon.dir/counters.cpp.o"
  "CMakeFiles/dfv_mon.dir/counters.cpp.o.d"
  "CMakeFiles/dfv_mon.dir/ldms.cpp.o"
  "CMakeFiles/dfv_mon.dir/ldms.cpp.o.d"
  "CMakeFiles/dfv_mon.dir/mpip.cpp.o"
  "CMakeFiles/dfv_mon.dir/mpip.cpp.o.d"
  "libdfv_mon.a"
  "libdfv_mon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfv_mon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
