file(REMOVE_RECURSE
  "CMakeFiles/scheduler_whatif.dir/scheduler_whatif.cpp.o"
  "CMakeFiles/scheduler_whatif.dir/scheduler_whatif.cpp.o.d"
  "scheduler_whatif"
  "scheduler_whatif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheduler_whatif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
