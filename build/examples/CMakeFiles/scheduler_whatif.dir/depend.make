# Empty dependencies file for scheduler_whatif.
# This may be replaced when dependencies are built.
