file(REMOVE_RECURSE
  "CMakeFiles/forecast_demo.dir/forecast_demo.cpp.o"
  "CMakeFiles/forecast_demo.dir/forecast_demo.cpp.o.d"
  "forecast_demo"
  "forecast_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forecast_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
