# Empty compiler generated dependencies file for forecast_demo.
# This may be replaced when dependencies are built.
