file(REMOVE_RECURSE
  "CMakeFiles/dfv_cli.dir/dfv.cpp.o"
  "CMakeFiles/dfv_cli.dir/dfv.cpp.o.d"
  "dfv"
  "dfv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfv_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
