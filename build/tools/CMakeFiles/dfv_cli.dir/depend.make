# Empty dependencies file for dfv_cli.
# This may be replaced when dependencies are built.
